// Command auriceval regenerates the paper's tables and figures against a
// synthetic network (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	auriceval -exp fig2|fig3|fig4|table3|table4|fig10|localglobal|fig11|fig12|table5|all \
//	          [-seed N] [-markets N] [-enbs N] [-folds N] [-samples N] [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"auric/internal/core"
	"auric/internal/eval"
	"auric/internal/launch"
	"auric/internal/netsim"
	"auric/internal/obs"
	"auric/internal/report"
	"auric/internal/stats"
	"auric/internal/trace"
)

type env struct {
	w       *netsim.World
	cv      eval.CVOptions
	quick   bool
	markets []int // the four timezone markets
	all     []int // every market
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run")
		seed    = flag.Uint64("seed", 1, "generation seed")
		markets = flag.Int("markets", 28, "number of markets")
		enbs    = flag.Int("enbs", 40, "eNodeBs per market")
		folds   = flag.Int("folds", 3, "cross-validation folds")
		samples = flag.Int("samples", 0, "max samples per parameter table (0 = all)")
		quick   = flag.Bool("quick", true, "shrink the expensive learners (forest size, MLP depth)")
		workers = flag.Int("workers", 0, "per-parameter worker pool size (0 = all CPUs)")
		timings = flag.Bool("timings", true, "print a pipeline stage-timing summary after the run")
	)
	flag.Parse()
	if *timings {
		defer printStageTimings()
	}

	fmt.Printf("generating network: seed=%d markets=%d eNodeBs/market=%d\n", *seed, *markets, *enbs)
	w := netsim.Generate(netsim.Options{Seed: *seed, Markets: *markets, ENodeBsPerMarket: *enbs})
	fmt.Printf("carriers=%s eNodeBs=%s\n\n", report.Count(len(w.Net.Carriers)), report.Count(len(w.Net.ENodeBs)))

	e := &env{
		w:     w,
		cv:    eval.CVOptions{Folds: *folds, Seed: *seed, MaxSamples: *samples, Workers: *workers},
		quick: *quick,
	}
	e.markets = eval.PickTimezoneMarkets(w)
	for i := range w.Net.Markets {
		e.all = append(e.all, i)
	}

	runners := map[string]func(*env) error{
		"fig2": runFig2, "fig3": runFig3, "fig4": runFig4,
		"table3": runTable3, "table4": runTable4, "fig10": runFig10,
		"localglobal": runLocalGlobal, "fig11": runFig11, "fig12": runFig12,
		"table5": runTable5, "deps": runDeps, "scale": runScale,
		"trace": runTrace,
	}
	order := []string{"fig2", "fig3", "fig4", "table3", "table4", "fig10", "localglobal", "fig11", "fig12", "table5", "deps"}
	// "scale" regenerates worlds of increasing size and "trace" prints one
	// recommendation's span tree; neither is part of "all" — run them
	// explicitly with -exp scale / -exp trace.

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](e); err != nil {
				fmt.Fprintln(os.Stderr, "auriceval:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "auriceval: unknown experiment %q (have %v, all)\n", *exp, order)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "auriceval:", err)
		os.Exit(1)
	}
}

func runFig2(e *env) error {
	rows := eval.Fig2(e.w)
	labels := make([]string, 0, 20)
	values := make([]float64, 0, 20)
	for _, r := range rows[:20] {
		labels = append(labels, r.Param)
		values = append(values, float64(r.Distinct))
	}
	fmt.Print(report.Bars("distinct values per parameter (top 20 of 65, network-wide)", labels, values, 40))
	over10 := 0
	for _, r := range rows {
		if r.Distinct > 10 {
			over10++
		}
	}
	fmt.Printf("parameters with >10 distinct values: %d of %d (paper: \"several\"; max %d)\n",
		over10, len(rows), rows[0].Distinct)
	return nil
}

func runFig3(e *env) error {
	rows := eval.Fig3(e.w)
	// Print the ten most variable parameters across all markets.
	sort.SliceStable(rows, func(i, j int) bool {
		return sum(rows[i].PerMarket) > sum(rows[j].PerMarket)
	})
	header := []string{"parameter"}
	for m := range e.w.Net.Markets {
		header = append(header, fmt.Sprintf("m%d", m+1))
	}
	var table [][]string
	for _, r := range rows[:10] {
		row := []string{r.Param}
		for _, d := range r.PerMarket {
			row = append(row, strconv.Itoa(d))
		}
		table = append(table, row)
	}
	fmt.Print(report.Table(header, table))
	return nil
}

func runFig4(e *env) error {
	rows, byClass := eval.Fig4(e.w)
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.Param, fmt.Sprintf("%.2f", r.Pooled), r.Class.String()})
	}
	sort.Slice(table, func(i, j int) bool { return table[i][1] > table[j][1] })
	fmt.Print(report.Table([]string{"parameter", "skewness", "class"}, table[:15]))
	fmt.Printf("\nhighly skewed: %d, moderately skewed: %d, symmetric: %d (of %d; paper: 33/12/20)\n",
		byClass[stats.HighlySkewed], byClass[stats.ModeratelySkewed],
		byClass[stats.Symmetric], len(rows))
	return nil
}

func runTable3(e *env) error {
	rows := eval.Table3(e.w, e.markets)
	var table [][]string
	totC, totE, totP := 0, 0, 0
	for i, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("Market %d", i+1), r.Timezone,
			report.Count(r.Carriers), report.Count(r.ENodeBs), report.Count(r.ParamValues),
		})
		totC += r.Carriers
		totE += r.ENodeBs
		totP += r.ParamValues
	}
	table = append(table, []string{"All four", "", report.Count(totC), report.Count(totE), report.Count(totP)})
	fmt.Print(report.Table([]string{"", "timezone", "carriers", "eNodeBs", "parameters"}, table))
	return nil
}

func runTable4(e *env) error {
	results, _, err := eval.GlobalLearnerComparison(e.w, e.markets, eval.DefaultLearnerSpecs(e.quick, e.cv.Workers), e.cv)
	if err != nil {
		return err
	}
	printLearnerTable(e, results)
	return nil
}

func printLearnerTable(e *env, results []eval.LearnerResult) {
	header := []string{"learner"}
	for i := range e.markets {
		header = append(header, fmt.Sprintf("market %d", i+1))
	}
	header = append(header, "all four")
	var table [][]string
	for _, r := range results {
		row := []string{r.Learner}
		for _, m := range e.markets {
			row = append(row, report.Percent(r.PerMarket[m].Accuracy()))
		}
		row = append(row, report.Percent(r.Overall.Accuracy()))
		table = append(table, row)
	}
	fmt.Print(report.Table(header, table))
}

func runFig10(e *env) error {
	_, fig10, err := eval.GlobalLearnerComparison(e.w, e.markets[:1], eval.DefaultLearnerSpecs(e.quick, e.cv.Workers), e.cv)
	if err != nil {
		return err
	}
	m := e.markets[0]
	rows := fig10[m]
	header := []string{"parameter", "distinct"}
	header = append(header, eval.GlobalLearners...)
	var table [][]string
	for _, r := range rows[:15] {
		row := []string{r.Param, strconv.Itoa(r.Distinct)}
		for _, l := range eval.GlobalLearners {
			row = append(row, report.Percent(r.Acc[l]))
		}
		table = append(table, row)
	}
	fmt.Printf("market %d, 15 highest-variability parameters:\n", m)
	fmt.Print(report.Table(header, table))
	return nil
}

func runLocalGlobal(e *env) error {
	g4, l4, err := eval.LocalVsGlobal(e.w, e.markets, e.cv, nil)
	if err != nil {
		return err
	}
	fmt.Printf("4 markets : CF global %s -> CF local %s (paper: 95.48%% -> 96.14%%)\n",
		report.Percent(g4.Accuracy()), report.Percent(l4.Accuracy()))
	gAll, lAll, err := eval.LocalVsGlobal(e.w, e.all, e.cv, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%d markets: CF global %s -> CF local %s (paper, 28 markets: 96.5%% -> 96.9%%)\n",
		len(e.all), report.Percent(gAll.Accuracy()), report.Percent(lAll.Accuracy()))
	return nil
}

func runFig11(e *env) error {
	rows, err := eval.Fig11(e.w, 4, e.cv)
	if err != nil {
		return err
	}
	for _, r := range rows {
		labels := make([]string, len(r.PerMarket))
		for m := range r.PerMarket {
			labels[m] = fmt.Sprintf("market %-2d (d=%d)", m+1, r.DistinctPer[m])
		}
		vals := make([]float64, len(r.PerMarket))
		for m, a := range r.PerMarket {
			vals[m] = a * 100
		}
		fmt.Print(report.Bars("local-learner accuracy for "+r.Param+" (%)", labels, vals, 40))
		fmt.Println()
	}
	return nil
}

func runFig12(e *env) error {
	labels, local, err := eval.Fig12(e.w, e.cv)
	if err != nil {
		return err
	}
	tot := float64(labels.Total)
	if tot == 0 {
		fmt.Println("no mismatches")
		return nil
	}
	fmt.Printf("local learner accuracy across all markets: %s\n", report.Percent(local.Accuracy()))
	fmt.Printf("mismatches labeled by the ground-truth oracle (%d total):\n", labels.Total)
	fmt.Print(report.Bars("", []string{
		"update learner     (paper:  5%)",
		"good recommendation (paper: 28%)",
		"inconclusive        (paper: 67%)",
	}, []float64{
		100 * float64(labels.UpdateLearner) / tot,
		100 * float64(labels.GoodRecommendation) / tot,
		100 * float64(labels.Inconclusive) / tot,
	}, 40))
	return nil
}

func runTable5(e *env) error {
	res, _, err := launch.Simulate(e.w, launch.SimOptions{Seed: e.cv.Seed, Launches: 1251})
	if err != nil {
		return err
	}
	fmt.Print(report.Table([]string{"metric", "value", "paper"}, [][]string{
		{"new carriers launched", report.Count(res.Launched), "1251"},
		{"changes recommended by Auric", fmt.Sprintf("%d (%.1f%%)", res.WithChanges, 100*res.ChangeRate()), "143 (11.4%)"},
		{"changes implemented successfully", report.Count(res.Implemented), "114 (9%)"},
		{"fall-outs", report.Count(res.Fallouts), "29"},
		{"  premature off-band unlocks", report.Count(res.FalloutUnlock), ""},
		{"  EMS execution timeouts", report.Count(res.FalloutTimeout), ""},
		{"parameters changed", report.Count(res.ParamsChanged), "1102"},
	}))
	return nil
}

func runDeps(e *env) error {
	res, err := eval.DependencyRecovery(e.w, e.cv.MaxSamples)
	if err != nil {
		return err
	}
	fmt.Printf("chi-square dependency recovery over %d parameters:\n", res.Params)
	fmt.Printf("  recall of true dependencies:    %s\n", report.Percent(res.Recall()))
	fmt.Printf("  ranked in upper half when found: %s\n", report.Percent(res.TopWeighted()))
	return nil
}

// runScale measures collaborative-filtering accuracy as the network
// grows, showing convergence toward the paper's large-network numbers.
func runScale(e *env) error {
	fmt.Println("CF accuracy vs network size (4 markets each, global -> local):")
	for _, enbs := range []int{20, 40, 80} {
		w := netsim.Generate(netsim.Options{Seed: e.cv.Seed, Markets: 4, ENodeBsPerMarket: enbs})
		markets := eval.PickTimezoneMarkets(w)
		cv := e.cv
		cv.MaxSamples = 0 // use every carrier at each scale
		g, l, err := eval.LocalVsGlobal(w, markets, cv, nil)
		if err != nil {
			return err
		}
		fmt.Printf("  %3d eNodeBs/market (%5d carriers): %s -> %s\n",
			enbs, len(w.Net.Carriers), report.Percent(g.Accuracy()), report.Percent(l.Accuracy()))
	}
	return nil
}

// runTrace trains the local engine on the generated world, runs one
// traced recommendation and prints its span tree — the CLI view of what
// auricd serves at /debug/traces, including the per-parameter relaxation
// levels and candidate counts.
func runTrace(e *env) error {
	engine := core.New(e.w.Schema, core.Options{Local: true, Workers: e.cv.Workers})
	if err := engine.Train(e.w.Net, e.w.X2, e.w.Current); err != nil {
		return err
	}
	c := &e.w.Net.Carriers[len(e.w.Net.Carriers)/2]
	neighbors := e.w.X2.CarrierNeighbors(c.ID)
	tr := trace.New(trace.Options{SampleRate: 1})
	ctx, root := tr.StartRoot(context.Background(), "auriceval.recommend")
	if _, err := engine.RecommendContext(ctx, c, neighbors); err != nil {
		root.Finish()
		return err
	}
	root.Finish()
	traces := tr.Traces()
	if len(traces) == 0 {
		return fmt.Errorf("trace: no trace recorded")
	}
	fmt.Printf("traced recommendation for carrier %d (%d neighbors):\n\n", c.ID, len(neighbors))
	fmt.Print(trace.FormatTree(traces[0]))
	return nil
}

// printStageTimings summarizes the pipeline stage timers (the same
// histograms auricd exports at /metrics) accumulated over the run:
// engine train/recommend wall-clock, per-parameter fan-out work, dataset
// labeling and snapshot loads.
func printStageTimings() {
	var table [][]string
	for _, f := range obs.Default().Gather() {
		if f.Kind != obs.KindHistogram || !strings.HasPrefix(f.Name, "auric_") {
			continue
		}
		for _, s := range f.Series {
			if s.Count == 0 {
				continue
			}
			mean := s.Sum / float64(s.Count)
			table = append(table, []string{
				strings.TrimSuffix(strings.TrimPrefix(f.Name, "auric_"), "_seconds"),
				report.Count(int(s.Count)),
				fmt.Sprintf("%.3fs", s.Sum),
				fmt.Sprintf("%.3fms", mean*1000),
			})
		}
	}
	if len(table) == 0 {
		return
	}
	fmt.Println("==== pipeline stage timings ====")
	fmt.Print(report.Table([]string{"stage", "calls", "total", "mean"}, table))
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
