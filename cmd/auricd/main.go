// Command auricd serves configuration recommendations over HTTP, the way
// Auric is consumed inside the SmartLaunch automation (Sec 5).
//
// It generates (or loads, with -load) a network snapshot and trains one
// local collaborative-filtering engine per market — the sharded serving
// shape of the paper's 28-market deployment. Requests route to their
// carrier's market shard, and snapshots reload with zero downtime: a new
// shard set trains in the background, an atomic pointer swap makes it
// live, and in-flight requests drain on the old generation.
//
//	GET    /healthz               -> ok
//	GET    /v1/network            -> network summary JSON
//	GET    /v1/carriers/{id}      -> carrier attributes JSON
//	POST   /v1/carriers           -> live carrier upsert (single or batch)
//	DELETE /v1/carriers/{id}      -> tombstone a carrier
//	GET    /v1/shards             -> per-market shard layout + generation
//	POST   /v1/recommend          -> recommendations for a carrier
//	POST   /v1/reload             -> retrain + swap the shard set
//	POST   /v1/compact            -> fold the delta journal into a snapshot
//	GET    /metrics               -> Prometheus text exposition
//	GET    /debug/traces          -> recent + slow request traces JSON
//	       /debug/pprof/...       -> net/http/pprof (with -pprof)
//
// The ingest routes track a live network between snapshots: upserts and
// tombstones patch the affected parameter models in place instead of
// retraining (see ingest.go and DESIGN.md). With -journal every accepted
// mutation is appended to an fsynced JSONL delta journal before it is
// acknowledged and replayed over the latest snapshot on startup, so a
// crash loses nothing; POST /v1/compact (or the journal exceeding
// -journal-max-bytes) folds the journal into <journal>.snapshot.
//
// SIGHUP triggers the same reload as POST /v1/reload. Every request is
// traced (internal/trace): the response carries a W3C traceparent header,
// sampled requests record a span tree served at /debug/traces, and with
// -audit-log each recommendation value served is appended to a JSONL
// audit log joined to its trace by trace id.
//
// The recommend body identifies either an existing carrier by id, or a new
// carrier by eNodeB + frequency:
//
//	{"carrier": 123}
//	{"enodeb": 45, "frequencyMHz": 1900}
//
// A JSON array of such objects requests a batch: every item is answered
// in its own slot of the "results" array (recommendations or a per-item
// "error"), so one bad item never fails its siblings, and all valid items
// share the engine fan-out of their market shard. With
// "Accept: application/x-ndjson" a batch streams instead: one JSON object
// per line, flushed per result in request order as each carrier
// completes, so a 10K-carrier sweep never buffers the whole response.
//
// Errors are JSON objects of the form {"error": "..."}. The server runs
// with explicit read/write timeouts and drains in-flight requests on
// SIGINT/SIGTERM before exiting. OPERATIONS.md documents every endpoint,
// flag and exported metric.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"auric"
	"auric/internal/audit"
	"auric/internal/health"
	"auric/internal/journal"
	"auric/internal/obs"
	"auric/internal/rng"
	"auric/internal/snapshot"
	"auric/internal/trace"
)

type server struct {
	schema *auric.Schema
	engine *auric.ShardedEngine
	// source rebuilds the engine's inputs for reloads: from the -load
	// snapshot file in snapshot mode, from the generated world otherwise.
	// It must be safe to call repeatedly.
	source func() (*auric.Network, *auric.X2Graph, *auric.Config, error)
	// workers is the per-shard worker pool size restore passes to the
	// engine it bootstraps.
	workers int
	// cacheEntries sizes the engine's generation-keyed recommendation
	// memo cache (0 disables it).
	cacheEntries int
	// reloadMu serializes every state mutation: snapshot reloads (HTTP and
	// SIGHUP), live ingest, and journal compaction. Serving never takes it.
	reloadMu sync.Mutex
	// journal, when non-nil, records every accepted ingest delta before it
	// is acknowledged (see ingest.go); snapPath is where compaction folds
	// it (<journal>.snapshot) and journalMax the size that triggers an
	// automatic fold.
	journal    *journal.Journal
	snapPath   string
	journalMax int64
	// world is present when the network was generated in-process; it
	// enables richer new-carrier synthesis. Snapshot-served networks run
	// with world == nil and derive new carriers from a co-sited donor.
	world *auric.World
	// newRNG drives new-carrier synthesis sampling; it is shared across
	// request goroutines and guarded by newRNGMu.
	newRNG   *rng.RNG
	newRNGMu sync.Mutex
	// streamChunk is the per-flush chunk size of NDJSON batch streaming
	// (0 means the engine default).
	streamChunk int
	// recommendations counts recommendation values served, by voting
	// support (auric_recommendations_total{supported}).
	recommendations *obs.CounterVec
	// batchSize distributes the carriers per POST /v1/recommend request
	// (auric_recommend_batch_size; the single-object form observes 1).
	batchSize *obs.Histogram
	// reloads counts snapshot reloads by trigger and outcome
	// (auric_reloads_total{trigger,ok}).
	reloads *obs.CounterVec
	// ingests counts live-ingest operations by kind and outcome
	// (auric_ingest_ops_total{kind,ok}); compactions counts journal folds
	// (auric_compactions_total{trigger,ok}).
	ingests     *obs.CounterVec
	compactions *obs.CounterVec
	// journalLag and journalBytes expose the journal's replay lag in
	// entries and its size in bytes.
	journalLag   *obs.Gauge
	journalBytes *obs.Gauge
	// audit, when non-nil, receives one record per recommendation value
	// served by POST /v1/recommend.
	audit *audit.Log
	// health scores each shard's served model (windows, drift, shadow
	// refits) behind GET /v1/health/model; nil only in focused tests.
	health *health.Tracker
}

// handlerOptions configure the HTTP surface built by newHandler.
type handlerOptions struct {
	registry  *obs.Registry // metrics registry served at /metrics
	tracer    *trace.Tracer // nil means an always-sample default tracer
	pprof     bool          // mount net/http/pprof under /debug/pprof/
	accessLog *log.Logger   // nil disables access logging
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8400", "listen address")
		seed      = flag.Uint64("seed", 1, "network generation seed")
		markets   = flag.Int("markets", 4, "number of markets")
		enbs      = flag.Int("enbs", 30, "eNodeBs per market")
		load      = flag.String("load", "", "serve a network snapshot (auricgen -save) instead of generating")
		workers   = flag.Int("workers", 0, "train/recommend worker pool size per shard (0 = all CPUs)")
		chunk     = flag.Int("stream-chunk", 0, "carriers per NDJSON flush chunk (0 = engine default)")
		cacheSize = flag.Int("cache-entries", 4096, "recommendation sets memoized by the generation-keyed serving cache; reload and ingest start it cold (0 disables)")
		cacheOff  = flag.Bool("cache-off", false, "disable the recommendation memo cache regardless of -cache-entries")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		accessLog = flag.Bool("access-log", true, "log one structured line per request")

		traceSample = flag.Float64("trace-sample", 1.0, "fraction of requests recording a full span tree at /debug/traces (0..1)")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "requests at least this slow are always captured in the slow-trace ring (0 disables)")
		traceBuffer = flag.Int("trace-buffer", 256, "recent traces retained in memory")

		auditPath     = flag.String("audit-log", "", "append one JSONL record per recommendation value served (empty disables)")
		auditMaxBytes = flag.Int64("audit-max-bytes", 64<<20, "rotate the audit log before it exceeds this size")

		journalPath = flag.String("journal", "", "append-only delta journal making live ingest durable across restarts (empty: ingest applies in memory only)")
		journalMax  = flag.Int64("journal-max-bytes", 8<<20, "compact the journal into its snapshot when it exceeds this size (0 disables the size trigger)")

		healthWindow          = flag.Int("health-window", 2048, "served predictions retained per market shard for model-health scoring (0 disables the rolling window)")
		healthMinWindow       = flag.Int("health-min-window", 256, "window samples required before the unsupported-ratio threshold can degrade a shard")
		healthMaxPSI          = flag.Float64("health-max-psi", 0.25, "degrade a shard when any attribute column's drift PSI against its training base exceeds this (<= 0 disables)")
		healthMaxUnsupported  = flag.Float64("health-max-unsupported", 0.5, "degrade a shard when the unsupported share of its serving window exceeds this (<= 0 disables)")
		healthMaxDisagreement = flag.Float64("health-max-disagreement", 0.02, "degrade a shard when its last shadow-refit disagreement ratio exceeds this (<= 0 disables)")
		healthMaxLagOps       = flag.Int64("health-max-lag-ops", 0, "degrade every shard when the delta journal's replay lag exceeds this many entries (0 disables)")
		healthShadowEvery     = flag.Int64("health-shadow-every", 0, "run an automatic background shadow refit of a market after this many applied ingest ops (0 disables; GET /v1/health/model?refresh=shadow always works)")
		healthShadowProbes    = flag.Int("health-shadow-probes", 64, "carriers replayed per shadow-refit divergence check (< 0: the whole base cohort)")
	)
	flag.Parse()

	s := &server{newRNG: rng.New(*seed ^ 0xd), streamChunk: *chunk, workers: *workers, cacheEntries: *cacheSize}
	if *cacheOff {
		s.cacheEntries = 0
	}
	// The tracker exists before restore so the initial Load lands as its
	// baseline; restore binds it to the engine it bootstraps.
	s.health = health.New(obs.Default(), health.Config{
		WindowSize:      *healthWindow,
		MinWindow:       *healthMinWindow,
		MaxPSI:          *healthMaxPSI,
		MaxUnsupported:  *healthMaxUnsupported,
		MaxDisagreement: *healthMaxDisagreement,
		MaxLagOps:       *healthMaxLagOps,
		ShadowEvery:     *healthShadowEvery,
		ShadowProbes:    *healthShadowProbes,
		OnTransition:    logHealthTransition,
	})
	if *auditPath != "" {
		al, err := audit.Open(*auditPath, audit.Options{MaxBytes: *auditMaxBytes})
		if err != nil {
			log.Fatal(err)
		}
		defer al.Close()
		s.audit = al
		log.Printf("auditing recommendations to %s (rotate at %d bytes)", *auditPath, *auditMaxBytes)
	}
	if *load != "" {
		path := *load
		s.source = func() (*auric.Network, *auric.X2Graph, *auric.Config, error) {
			net, cfg, err := snapshot.Load(path)
			if err != nil {
				return nil, nil, nil, err
			}
			return net, auric.BuildX2(net), cfg, nil
		}
		log.Printf("loading snapshot %s", path)
	} else {
		log.Printf("generating network (seed=%d, %d markets x %d eNodeBs)", *seed, *markets, *enbs)
		w := auric.SimulateNetwork(auric.NetworkOptions{Seed: *seed, Markets: *markets, ENodeBsPerMarket: *enbs})
		s.world = w
		s.source = func() (*auric.Network, *auric.X2Graph, *auric.Config, error) {
			return w.Net, w.X2, w.Current, nil
		}
	}
	var jentries []journal.Entry
	if *journalPath != "" {
		j, entries, err := journal.Open(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer j.Close()
		if j.Dropped() > 0 {
			log.Printf("auricd: journal %s: truncated %d corrupt tail bytes (crash footprint)", *journalPath, j.Dropped())
		}
		s.journal = j
		s.journalMax = *journalMax
		s.snapPath = *journalPath + ".snapshot"
		jentries = entries
		log.Printf("auricd: live ingest journal %s (%d entries to replay, compact at %d bytes into %s)",
			*journalPath, len(entries), *journalMax, s.snapPath)
	}
	start := time.Now()
	gen, err := s.restore(jentries)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shard set ready: generation %d in %.2fs", gen, time.Since(start).Seconds())

	// SIGHUP reloads the snapshot with zero downtime, the operator's
	// signal-driven twin of POST /v1/reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if _, err := s.reload("sighup"); err != nil {
				log.Printf("auricd: SIGHUP reload failed: %v", err)
			}
		}
	}()

	obs.RegisterRuntimeMetrics(obs.Default())
	opts := handlerOptions{
		registry: obs.Default(),
		pprof:    *pprofOn,
		tracer: trace.New(trace.Options{
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
			Capacity:      *traceBuffer,
		}),
	}
	if *accessLog {
		opts.accessLog = log.Default()
	}
	if err := serve(*addr, newHandler(s, opts)); err != nil {
		log.Fatal(err)
	}
}

// reload retrains the shard set and swaps it in atomically. In journal
// mode it compacts first, folding every live-ingested delta into the
// snapshot so the reload rebuilds from it and loses nothing; without a
// journal it rebuilds from the configured source, reverting any in-memory
// ingest. Concurrent reload triggers serialize.
func (s *server) reload(trigger string) (int64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	var (
		gen int64
		err error
	)
	if s.journal != nil {
		err = s.compactLocked(trigger)
	}
	if err == nil {
		gen, err = s.restore(nil)
	}
	if s.reloads != nil {
		s.reloads.With(trigger, strconv.FormatBool(err == nil)).Inc()
	}
	if err != nil {
		return 0, err
	}
	log.Printf("auricd: reload complete (trigger=%s): generation %d in %.2fs",
		trigger, gen, time.Since(start).Seconds())
	return gen, nil
}

// serve runs an explicit http.Server on addr with header/body timeouts
// and drains gracefully on SIGINT/SIGTERM. It listens before serving so
// the logged address is the bound one (supporting -addr :0 for smoke
// tests).
func serve(addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveOn(ln, h)
}

func serveOn(ln net.Listener, h http.Handler) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Handler: h,
		// A recommend call on a very large network can take seconds; the
		// write timeout bounds it generously while still shedding wedged
		// clients. The header timeout defeats slowloris-style clients.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("auricd listening on http://%s", ln.Addr())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		log.Printf("auricd: signal received, draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		log.Printf("auricd: shutdown complete")
		return nil
	}
}

// newHandler builds the full HTTP surface: routed handlers wrapped in
// per-route metrics, the /metrics exposition, optional pprof, and
// optional access logging — shared by main and the handler tests.
func newHandler(s *server, opts handlerOptions) http.Handler {
	reg := opts.registry
	if reg == nil {
		reg = obs.Default()
	}
	m := obs.NewHTTPMetrics(reg)
	tr := opts.tracer
	if tr == nil {
		tr = trace.New(trace.Options{SampleRate: 1})
	}
	s.recommendations = reg.CounterVec("auric_recommendations_total",
		"Recommendation values served by POST /v1/recommend, by voting support.", "supported")
	s.batchSize = reg.Histogram("auric_recommend_batch_size",
		"Carriers per POST /v1/recommend request (1 for the single-object form).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384})
	s.reloads = reg.CounterVec("auric_reloads_total",
		"Snapshot reloads, by trigger (http, sighup) and outcome.", "trigger", "ok")
	s.ingests = reg.CounterVec("auric_ingest_ops_total",
		"Live-ingest operations via POST/DELETE /v1/carriers, by kind (upsert, tombstone) and outcome.", "kind", "ok")
	s.compactions = reg.CounterVec("auric_compactions_total",
		"Delta-journal compactions, by trigger (http, size, sighup) and outcome.", "trigger", "ok")
	s.journalLag = reg.Gauge("auric_journal_lag_ops",
		"Journal entries not yet folded into the compacted snapshot — the replay a restart would pay.")
	s.journalBytes = reg.Gauge("auric_journal_bytes",
		"Current delta journal size in bytes.")
	s.updateJournalGauges()

	mux := http.NewServeMux()
	// Trace inside the metrics wrapper: the root span covers the handler,
	// the histogram covers span bookkeeping too.
	handle := func(method, pattern string, h http.HandlerFunc) {
		mux.Handle(method+" "+pattern, m.Handler(pattern, tr.Middleware(pattern, h)))
	}
	route := func(method, pattern string, h http.HandlerFunc) {
		handle(method, pattern, h)
		// Fallback for every other method on a known path: JSON 405.
		// The method-qualified pattern above is more specific, so it
		// wins whenever the method matches.
		mux.Handle(pattern, m.Handler(pattern, methodNotAllowed(method)))
	}
	route("GET", "/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rw.Write([]byte("ok\n"))
	})
	route("GET", "/v1/network", s.handleNetwork)
	handle("GET", "/v1/carriers/", s.handleCarrier)
	handle("DELETE", "/v1/carriers/", s.handleCarrierDelete)
	mux.Handle("/v1/carriers/", m.Handler("/v1/carriers/", methodNotAllowed("GET, DELETE")))
	route("POST", "/v1/carriers", s.handleIngest)
	route("GET", "/v1/shards", s.handleShards)
	route("GET", "/v1/health/model", s.handleModelHealth)
	route("POST", "/v1/recommend", s.handleRecommend)
	route("POST", "/v1/reload", s.handleReload)
	route("POST", "/v1/compact", s.handleCompact)
	mux.Handle("GET /metrics", m.Handler("/metrics", reg.Handler()))
	mux.Handle("/metrics", m.Handler("/metrics", methodNotAllowed("GET")))
	// The trace inspection endpoint is not itself traced: reading the
	// rings should not push traces into them.
	mux.Handle("GET /debug/traces", m.Handler("/debug/traces", tr.TracesHandler()))
	mux.Handle("/debug/traces", m.Handler("/debug/traces", methodNotAllowed("GET")))
	// Unknown paths: JSON 404 under a shared route label so scraping
	// abuse cannot explode the label space.
	mux.Handle("/", m.HandlerFunc("other", func(rw http.ResponseWriter, _ *http.Request) {
		writeError(rw, http.StatusNotFound, "no such route")
	}))
	if opts.pprof {
		// pprof owns its sub-toolchain routing (Index serves the named
		// profiles); symbol accepts POST, so no method qualifiers here.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	var h http.Handler = mux
	if opts.accessLog != nil {
		h = obs.AccessLog(opts.accessLog, h)
	}
	return h
}

// inventory pins the serving snapshot for one request. All reads of the
// returned structures are consistent with one generation; the engine call
// that follows may land on a newer one, which is safe because carrier ids
// are stable across reloads of the same network.
func (s *server) inventory(rw http.ResponseWriter) (*auric.Network, *auric.X2Graph, int64, bool) {
	net, x2, gen, err := s.engine.Inventory()
	if err != nil {
		writeError(rw, http.StatusServiceUnavailable, err.Error())
		return nil, nil, 0, false
	}
	return net, x2, gen, true
}

func (s *server) handleNetwork(rw http.ResponseWriter, _ *http.Request) {
	net, _, gen, ok := s.inventory(rw)
	if !ok {
		return
	}
	writeJSON(rw, map[string]any{
		"markets":    len(net.Markets),
		"enodebs":    len(net.ENodeBs),
		"carriers":   len(net.Carriers),
		"generation": gen,
		"schema": map[string]int{
			"parameters": s.schema.Len(),
			"singular":   len(s.schema.Singular()),
			"pairwise":   len(s.schema.PairWise()),
		},
	})
}

// handleShards reports the serving shard layout: one entry per market
// with its carrier count, plus the snapshot generation — the operator's
// view of the partition behind /v1/recommend routing.
func (s *server) handleShards(rw http.ResponseWriter, _ *http.Request) {
	net, _, gen, ok := s.inventory(rw)
	if !ok {
		return
	}
	sizes, err := s.engine.ShardSizes()
	if err != nil {
		writeError(rw, http.StatusServiceUnavailable, err.Error())
		return
	}
	type shardInfo struct {
		Market   int    `json:"market"`
		Name     string `json:"name"`
		Carriers int    `json:"carriers"`
	}
	shards := make([]shardInfo, 0, len(sizes))
	for m, n := range sizes {
		name := ""
		if m < len(net.Markets) {
			name = net.Markets[m].Name
		}
		shards = append(shards, shardInfo{Market: m, Name: name, Carriers: n})
	}
	writeJSON(rw, map[string]any{
		"generation": gen,
		"shards":     shards,
	})
}

// handleReload retrains the shard set from the snapshot source and swaps
// it in with zero downtime — the HTTP twin of SIGHUP.
func (s *server) handleReload(rw http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	gen, err := s.reload("http")
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	net, _, _, ok := s.inventory(rw)
	if !ok {
		return
	}
	writeJSON(rw, map[string]any{
		"generation": gen,
		"carriers":   len(net.Carriers),
		"markets":    len(net.Markets),
		"seconds":    time.Since(start).Seconds(),
	})
}

func (s *server) handleCarrier(rw http.ResponseWriter, r *http.Request) {
	net, x2, _, ok := s.inventory(rw)
	if !ok {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/carriers/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= len(net.Carriers) {
		writeError(rw, http.StatusNotFound, "unknown carrier")
		return
	}
	c := &net.Carriers[id]
	attrs := map[string]string{}
	names := attributeNames()
	for i, v := range c.AttributeVector() {
		attrs[names[i]] = v
	}
	writeJSON(rw, map[string]any{
		"id":         c.ID,
		"enodeb":     c.ENodeB,
		"face":       c.Face,
		"market":     c.Market,
		"attributes": attrs,
		"neighbors":  x2.CarrierNeighbors(c.ID),
	})
}

type recommendRequest struct {
	Carrier      *int `json:"carrier"`
	ENodeB       *int `json:"enodeb"`
	FrequencyMHz int  `json:"frequencyMHz"`
	// Pairwise includes pair-wise recommendations towards the carrier's
	// X2 neighbors.
	Pairwise bool `json:"pairwise"`
}

type recommendation struct {
	Param string `json:"param"`
	// Neighbor is -1 for singular parameters; 0 is a valid carrier id,
	// so the field is never omitted.
	Neighbor    int     `json:"neighbor"`
	Value       float64 `json:"value"`
	Confidence  float64 `json:"confidence"`
	Supported   bool    `json:"supported"`
	Explanation string  `json:"explanation"`
	// Evidence diagnostics (see internal/learn.Diag): the relaxation
	// level the vote settled at and the size of the voting pool.
	RelaxationLevel int `json:"relaxationLevel"`
	Candidates      int `json:"candidates"`
}

// handleRecommend serves both request forms of POST /v1/recommend: a
// single request object (the original API, response shape unchanged) and
// an array of request objects, answered item by item. Batch items fail
// independently — a bad carrier id yields {"error": ...} in that item's
// slot while its siblings are still recommended — so one malformed entry
// never turns a 200 into a 400 for the rest of the batch. Batches with
// "Accept: application/x-ndjson" stream one entry per line instead of
// buffering the response.
func (s *server) handleRecommend(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if isJSONArray(body) {
		s.handleRecommendBatch(rw, r, body)
		return
	}
	var req recommendRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	net, x2, _, ok := s.inventory(rw)
	if !ok {
		return
	}
	s.observeBatchSize(1)
	carrier, neighbors, status, msg := s.resolveRecommend(net, x2, req)
	if status != 0 {
		writeError(rw, status, msg)
		return
	}
	recs, err := s.engine.RecommendContext(r.Context(), carrier, neighbors)
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	// The root span's trace id joins the response, the span tree at
	// /debug/traces and the audit records (present at any sample rate).
	traceID := requestTraceID(r)
	dtos := s.renderRecommendations(carrier, recs, traceID)
	writeJSON(rw, map[string]any{
		"carrier":         carrier.ID,
		"traceId":         traceID,
		"recommendations": dtos,
	})
	putRecDTOs(dtos)
}

// batchEntry is one item's slot in a batch response: recommendations or
// an error, never both.
type batchEntry struct {
	Carrier         int              `json:"carrier"`
	Error           string           `json:"error,omitempty"`
	Recommendations []recommendation `json:"recommendations,omitempty"`
}

// wantsNDJSON reports whether the client negotiated streaming batch
// responses via the Accept header.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// handleRecommendBatch answers the array form: every item resolves and
// recommends independently, valid items share the engine fan-out of
// their market shard, and the response carries one entry per item in
// request order — buffered JSON by default, NDJSON streaming when the
// client asks for it.
func (s *server) handleRecommendBatch(rw http.ResponseWriter, r *http.Request, body []byte) {
	var reqs []recommendRequest
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if len(reqs) == 0 {
		writeError(rw, http.StatusBadRequest, "empty batch")
		return
	}
	net, x2, _, ok := s.inventory(rw)
	if !ok {
		return
	}
	s.observeBatchSize(len(reqs))
	entries := make([]batchEntry, len(reqs))
	items := make([]auric.BatchItem, 0, len(reqs))
	itemOf := make([]int, 0, len(reqs)) // batch item -> request index
	for i, req := range reqs {
		carrier, neighbors, status, msg := s.resolveRecommend(net, x2, req)
		if status != 0 {
			entries[i] = batchEntry{Carrier: -1, Error: msg}
			continue
		}
		entries[i].Carrier = int(carrier.ID)
		items = append(items, auric.BatchItem{Carrier: carrier, Neighbors: neighbors})
		itemOf = append(itemOf, i)
	}
	traceID := requestTraceID(r)
	if wantsNDJSON(r) {
		s.streamRecommendBatch(rw, r, entries, items, itemOf, traceID)
		return
	}
	if len(items) > 0 {
		results, err := s.engine.RecommendBatch(r.Context(), items)
		if err != nil {
			writeError(rw, http.StatusInternalServerError, err.Error())
			return
		}
		for bi, res := range results {
			e := &entries[itemOf[bi]]
			if res.Err != nil {
				e.Error = res.Err.Error()
				continue
			}
			e.Recommendations = s.renderRecommendations(items[bi].Carrier, res.Recommendations, traceID)
		}
	}
	writeJSON(rw, map[string]any{
		"traceId": traceID,
		"results": entries,
	})
	for i := range entries {
		putRecDTOs(entries[i].Recommendations)
	}
}

// streamRecommendBatch writes the batch as NDJSON: one compact JSON
// object per line — the same shape as a buffered "results" entry — in
// strict request order, flushed per result as each carrier completes on
// its shard. Per-item failures (resolution or engine) ride inline as
// {"error": ...} lines and never terminate the stream; only a transport
// failure can truncate it.
func (s *server) streamRecommendBatch(rw http.ResponseWriter, r *http.Request, entries []batchEntry, items []auric.BatchItem, itemOf []int, traceID string) {
	rw.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := rw.(http.Flusher)
	// One pooled buffer + encoder serves every line of the stream (the
	// encoder appends the NDJSON newline itself); per-line DTO slices
	// return to their pool the moment the line is on the wire.
	buf := jsonBufs.Get().(*bytes.Buffer)
	defer jsonBufs.Put(buf)
	enc := json.NewEncoder(buf)
	next := 0 // next request index to write
	writeUpTo := func(limit int) {
		for ; next < limit; next++ {
			buf.Reset()
			if err := enc.Encode(&entries[next]); err != nil {
				buf.Reset()
				buf.WriteString("{\"carrier\":-1,\"error\":\"encoding entry\"}\n")
			}
			rw.Write(buf.Bytes())
			putRecDTOs(entries[next].Recommendations)
			entries[next].Recommendations = nil
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	err := s.engine.RecommendStream(r.Context(), items, s.streamChunk, func(bi int, res auric.BatchResult) {
		ri := itemOf[bi]
		// Resolution-failure entries queued before this item flush first,
		// keeping the stream in request order.
		writeUpTo(ri)
		e := &entries[ri]
		if res.Err != nil {
			e.Error = res.Err.Error()
		} else {
			e.Recommendations = s.renderRecommendations(items[bi].Carrier, res.Recommendations, traceID)
		}
		writeUpTo(ri + 1)
	})
	if err != nil {
		// Before the first line the response can still be a JSON error;
		// afterwards the stream has committed its 200 and simply ends
		// short (the client detects truncation by line count).
		if next == 0 {
			writeError(rw, http.StatusInternalServerError, err.Error())
		} else {
			log.Printf("auricd: NDJSON stream aborted after %d lines: %v", next, err)
		}
		return
	}
	writeUpTo(len(entries)) // trailing resolution-failure entries
}

// resolveRecommend turns one request into the carrier to recommend for
// (and its pair-wise neighbors); a non-zero status reports a per-request
// resolution failure.
func (s *server) resolveRecommend(net *auric.Network, x2 *auric.X2Graph, req recommendRequest) (carrier *auric.Carrier, neighbors []auric.CarrierID, status int, msg string) {
	switch {
	case req.Carrier != nil:
		id := *req.Carrier
		if id < 0 || id >= len(net.Carriers) {
			return nil, nil, http.StatusNotFound, "unknown carrier"
		}
		carrier = &net.Carriers[id]
		if req.Pairwise {
			neighbors = x2.CarrierNeighbors(carrier.ID)
		}
	case req.ENodeB != nil:
		enb := *req.ENodeB
		if enb < 0 || enb >= len(net.ENodeBs) {
			return nil, nil, http.StatusNotFound, "unknown eNodeB"
		}
		nc := s.newCarrierAt(net, auric.ENodeBID(enb))
		if nc == nil {
			return nil, nil, http.StatusConflict, "eNodeB hosts no carriers to derive from"
		}
		if req.FrequencyMHz != 0 {
			nc.FrequencyMHz = req.FrequencyMHz
		}
		carrier = nc
	default:
		return nil, nil, http.StatusBadRequest, "specify carrier or enodeb"
	}
	return carrier, neighbors, 0, ""
}

// renderRecommendations converts engine recommendations to response DTOs
// and feeds the per-value serving counter and audit log — shared by the
// single, batch and streaming forms so observability stays per-carrier
// either way.
func (s *server) renderRecommendations(carrier *auric.Carrier, recs []auric.Recommendation, traceID string) []recommendation {
	now := time.Now()
	out := getRecDTOs(len(recs))
	for _, rec := range recs {
		out = append(out, recommendation{
			Param:           rec.Param,
			Neighbor:        int(rec.Neighbor),
			Value:           rec.Value,
			Confidence:      rec.Confidence,
			Supported:       rec.Supported,
			Explanation:     rec.Explanation,
			RelaxationLevel: rec.RelaxationLevel,
			Candidates:      rec.Candidates,
		})
		if s.recommendations != nil {
			s.recommendations.With(strconv.FormatBool(rec.Supported)).Inc()
		}
		if s.audit != nil {
			if err := s.audit.Append(audit.Record{
				Time:            now,
				TraceID:         traceID,
				Carrier:         int(carrier.ID),
				Param:           rec.Param,
				Neighbor:        int(rec.Neighbor),
				Value:           rec.Value,
				Label:           rec.Label,
				Confidence:      rec.Confidence,
				Supported:       rec.Supported,
				RelaxationLevel: rec.RelaxationLevel,
				Candidates:      rec.Candidates,
				VoteShare:       rec.VoteShare,
				ExactIndexHit:   rec.ExactIndexHit,
				Dependents:      rec.Dependents,
				Dropped:         rec.Dropped,
				Explanation:     rec.Explanation,
			}); err != nil {
				log.Printf("auricd: audit append: %v", err)
			}
		}
	}
	return out
}

// requestTraceID extracts the root span's trace id ("" when untraced).
func requestTraceID(r *http.Request) string {
	if sp := trace.FromContext(r.Context()); sp != nil {
		return sp.TraceID().String()
	}
	return ""
}

func (s *server) observeBatchSize(n int) {
	if s.batchSize != nil {
		s.batchSize.Observe(float64(n))
	}
}

// isJSONArray reports whether the body's first JSON token opens an array
// (the batch form of /v1/recommend).
func isJSONArray(body []byte) bool {
	for _, b := range body {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return b == '['
		}
	}
	return false
}

// jsonBufs pools response encode buffers: recommend responses run to
// hundreds of KB (65 parameters x explanation strings), and encoding into
// a pooled buffer instead of a per-response one keeps the serving path's
// allocation rate flat under load.
var jsonBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// recDTOPool recycles the []recommendation DTO slices every response body
// is built from; callers return them via putRecDTOs once the bytes are on
// the wire (the encoder has copied everything it needs by then).
var recDTOPool = sync.Pool{New: func() any { s := make([]recommendation, 0, 80); return &s }}

func getRecDTOs(n int) []recommendation {
	p := recDTOPool.Get().(*[]recommendation)
	s := *p
	if cap(s) < n {
		*p = nil
		recDTOPool.Put(p)
		return make([]recommendation, 0, n)
	}
	// Hand out the backing array and recycle the header box; the slice
	// comes back through putRecDTOs.
	*p = nil
	recDTOPool.Put(p)
	return s[:0]
}

func putRecDTOs(s []recommendation) {
	if cap(s) == 0 {
		return
	}
	clear(s[:cap(s)])
	s = s[:0]
	recDTOPool.Put(&s)
}

func writeJSON(rw http.ResponseWriter, v any) {
	writeJSONStatus(rw, http.StatusOK, v)
}

// writeJSONStatus writes a JSON body with an explicit status code — used
// by responses that carry structure beyond the plain {"error": ...} shape,
// like per-item ingest validation results.
func writeJSONStatus(rw http.ResponseWriter, status int, v any) {
	buf := jsonBufs.Get().(*bytes.Buffer)
	defer jsonBufs.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("auricd: encoding response: %v", err)
		writeError(rw, http.StatusInternalServerError, "encoding response")
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		rw.WriteHeader(status)
	}
	if _, err := rw.Write(buf.Bytes()); err != nil {
		log.Printf("auricd: writing response: %v", err)
	}
}

// writeError sends the JSON error shape every non-2xx response uses.
func writeError(rw http.ResponseWriter, status int, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(map[string]string{"error": msg})
}

// methodNotAllowed is the fallback handler registered on the
// method-unqualified pattern of every route.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Allow", allow)
		writeError(rw, http.StatusMethodNotAllowed, "method not allowed; use "+allow)
	}
}

func attributeNames() []string {
	return []string{
		"carrierFrequency", "carrierType", "carrierInfo", "morphology",
		"channelBandwidth", "downlinkMimoMode", "hardwareConfiguration",
		"expectedCellSize", "trackingAreaCode", "market", "vendor",
		"neighborChannel", "neighborsOnSameENodeB", "softwareVersion",
	}
}

// newCarrierAt synthesizes a launch-ready carrier on an existing eNodeB:
// via the generator when available, otherwise by copying a co-sited donor
// carrier (the vendor's own practice).
func (s *server) newCarrierAt(net *auric.Network, enb auric.ENodeBID) *auric.Carrier {
	id := auric.CarrierID(len(net.Carriers))
	if s.world != nil {
		s.newRNGMu.Lock()
		defer s.newRNGMu.Unlock()
		return s.world.NewCarrierAt(enb, id, s.newRNG)
	}
	e := &net.ENodeBs[enb]
	if len(e.Carriers) == 0 {
		return nil
	}
	donor := net.Carriers[e.Carriers[0]]
	donor.ID = id
	donor.ENodeB = enb
	donor.NeighborsOnENB = len(e.Carriers)
	return &donor
}
