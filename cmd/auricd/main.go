// Command auricd serves configuration recommendations over HTTP, the way
// Auric is consumed inside the SmartLaunch automation (Sec 5).
//
// It generates (or, in a real deployment, would load) a network snapshot,
// trains the local collaborative-filtering engine, and serves:
//
//	GET  /healthz                 -> ok
//	GET  /v1/network              -> network summary JSON
//	GET  /v1/carriers/{id}        -> carrier attributes JSON
//	POST /v1/recommend            -> recommendations for a carrier
//	GET  /metrics                 -> Prometheus text exposition
//	GET  /debug/traces            -> recent + slow request traces JSON
//	     /debug/pprof/...        -> net/http/pprof (with -pprof)
//
// Every request is traced (internal/trace): the response carries a W3C
// traceparent header, sampled requests record a span tree served at
// /debug/traces, and with -audit-log each recommendation value served is
// appended to a JSONL audit log joined to its trace by trace id.
//
// The recommend body identifies either an existing carrier by id, or a new
// carrier by eNodeB + frequency:
//
//	{"carrier": 123}
//	{"enodeb": 45, "frequencyMHz": 1900}
//
// A JSON array of such objects requests a batch: every item is answered
// in its own slot of the "results" array (recommendations or a per-item
// "error"), so one bad item never fails its siblings, and all valid items
// share one engine fan-out.
//
// Errors are JSON objects of the form {"error": "..."}. The server runs
// with explicit read/write timeouts and drains in-flight requests on
// SIGINT/SIGTERM before exiting. OPERATIONS.md documents every endpoint,
// flag and exported metric.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"auric"
	"auric/internal/audit"
	"auric/internal/obs"
	"auric/internal/rng"
	"auric/internal/snapshot"
	"auric/internal/trace"
)

type server struct {
	schema *auric.Schema
	net    *auric.Network
	x2     *auric.X2Graph
	engine *auric.Engine
	// world is present when the network was generated in-process; it
	// enables richer new-carrier synthesis. Snapshot-served networks run
	// with world == nil and derive new carriers from a co-sited donor.
	world *auric.World
	// newRNG drives new-carrier synthesis sampling; it is shared across
	// request goroutines and guarded by newRNGMu.
	newRNG   *rng.RNG
	newRNGMu sync.Mutex
	// recommendations counts recommendation values served, by voting
	// support (auric_recommendations_total{supported}).
	recommendations *obs.CounterVec
	// batchSize distributes the carriers per POST /v1/recommend request
	// (auric_recommend_batch_size; the single-object form observes 1).
	batchSize *obs.Histogram
	// audit, when non-nil, receives one record per recommendation value
	// served by POST /v1/recommend.
	audit *audit.Log
}

// handlerOptions configure the HTTP surface built by newHandler.
type handlerOptions struct {
	registry  *obs.Registry // metrics registry served at /metrics
	tracer    *trace.Tracer // nil means an always-sample default tracer
	pprof     bool          // mount net/http/pprof under /debug/pprof/
	accessLog *log.Logger   // nil disables access logging
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8400", "listen address")
		seed      = flag.Uint64("seed", 1, "network generation seed")
		markets   = flag.Int("markets", 4, "number of markets")
		enbs      = flag.Int("enbs", 30, "eNodeBs per market")
		load      = flag.String("load", "", "serve a network snapshot (auricgen -save) instead of generating")
		workers   = flag.Int("workers", 0, "train/recommend worker pool size (0 = all CPUs)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		accessLog = flag.Bool("access-log", true, "log one structured line per request")

		traceSample = flag.Float64("trace-sample", 1.0, "fraction of requests recording a full span tree at /debug/traces (0..1)")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "requests at least this slow are always captured in the slow-trace ring (0 disables)")
		traceBuffer = flag.Int("trace-buffer", 256, "recent traces retained in memory")

		auditPath     = flag.String("audit-log", "", "append one JSONL record per recommendation value served (empty disables)")
		auditMaxBytes = flag.Int64("audit-max-bytes", 64<<20, "rotate the audit log before it exceeds this size")
	)
	flag.Parse()

	s := &server{newRNG: rng.New(*seed ^ 0xd)}
	if *auditPath != "" {
		al, err := audit.Open(*auditPath, audit.Options{MaxBytes: *auditMaxBytes})
		if err != nil {
			log.Fatal(err)
		}
		defer al.Close()
		s.audit = al
		log.Printf("auditing recommendations to %s (rotate at %d bytes)", *auditPath, *auditMaxBytes)
	}
	if *load != "" {
		log.Printf("loading snapshot %s", *load)
		net, cfg, err := snapshot.Load(*load)
		if err != nil {
			log.Fatal(err)
		}
		s.schema, s.net = cfg.Schema(), net
		s.x2 = auric.BuildX2(net)
		log.Printf("training local collaborative-filtering engine on %d carriers", len(net.Carriers))
		s.engine = auric.NewEngine(s.schema, auric.EngineOptions{Local: true, Workers: *workers})
		if err := s.engine.Train(net, s.x2, cfg); err != nil {
			log.Fatal(err)
		}
	} else {
		log.Printf("generating network (seed=%d, %d markets x %d eNodeBs)", *seed, *markets, *enbs)
		w := auric.SimulateNetwork(auric.NetworkOptions{Seed: *seed, Markets: *markets, ENodeBsPerMarket: *enbs})
		log.Printf("training local collaborative-filtering engine on %d carriers", len(w.Net.Carriers))
		engine := auric.NewEngine(w.Schema, auric.EngineOptions{Local: true, Workers: *workers})
		if err := engine.Train(w.Net, w.X2, w.Current); err != nil {
			log.Fatal(err)
		}
		s.world, s.engine = w, engine
		s.schema, s.net, s.x2 = w.Schema, w.Net, w.X2
	}

	obs.RegisterRuntimeMetrics(obs.Default())
	opts := handlerOptions{
		registry: obs.Default(),
		pprof:    *pprofOn,
		tracer: trace.New(trace.Options{
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
			Capacity:      *traceBuffer,
		}),
	}
	if *accessLog {
		opts.accessLog = log.Default()
	}
	if err := serve(*addr, newHandler(s, opts)); err != nil {
		log.Fatal(err)
	}
}

// serve runs an explicit http.Server on addr with header/body timeouts
// and drains gracefully on SIGINT/SIGTERM. It listens before serving so
// the logged address is the bound one (supporting -addr :0 for smoke
// tests).
func serve(addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveOn(ln, h)
}

func serveOn(ln net.Listener, h http.Handler) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Handler: h,
		// A recommend call on a very large network can take seconds; the
		// write timeout bounds it generously while still shedding wedged
		// clients. The header timeout defeats slowloris-style clients.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("auricd listening on http://%s", ln.Addr())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		log.Printf("auricd: signal received, draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		log.Printf("auricd: shutdown complete")
		return nil
	}
}

// newHandler builds the full HTTP surface: routed handlers wrapped in
// per-route metrics, the /metrics exposition, optional pprof, and
// optional access logging — shared by main and the handler tests.
func newHandler(s *server, opts handlerOptions) http.Handler {
	reg := opts.registry
	if reg == nil {
		reg = obs.Default()
	}
	m := obs.NewHTTPMetrics(reg)
	tr := opts.tracer
	if tr == nil {
		tr = trace.New(trace.Options{SampleRate: 1})
	}
	s.recommendations = reg.CounterVec("auric_recommendations_total",
		"Recommendation values served by POST /v1/recommend, by voting support.", "supported")
	s.batchSize = reg.Histogram("auric_recommend_batch_size",
		"Carriers per POST /v1/recommend request (1 for the single-object form).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	mux := http.NewServeMux()
	route := func(method, pattern string, h http.HandlerFunc) {
		// Trace inside the metrics wrapper: the root span covers the
		// handler, the histogram covers span bookkeeping too.
		mux.Handle(method+" "+pattern, m.Handler(pattern, tr.Middleware(pattern, h)))
		// Fallback for every other method on a known path: JSON 405.
		// The method-qualified pattern above is more specific, so it
		// wins whenever the method matches.
		mux.Handle(pattern, m.Handler(pattern, methodNotAllowed(method)))
	}
	route("GET", "/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rw.Write([]byte("ok\n"))
	})
	route("GET", "/v1/network", s.handleNetwork)
	route("GET", "/v1/carriers/", s.handleCarrier)
	route("POST", "/v1/recommend", s.handleRecommend)
	mux.Handle("GET /metrics", m.Handler("/metrics", reg.Handler()))
	mux.Handle("/metrics", m.Handler("/metrics", methodNotAllowed("GET")))
	// The trace inspection endpoint is not itself traced: reading the
	// rings should not push traces into them.
	mux.Handle("GET /debug/traces", m.Handler("/debug/traces", tr.TracesHandler()))
	mux.Handle("/debug/traces", m.Handler("/debug/traces", methodNotAllowed("GET")))
	// Unknown paths: JSON 404 under a shared route label so scraping
	// abuse cannot explode the label space.
	mux.Handle("/", m.HandlerFunc("other", func(rw http.ResponseWriter, _ *http.Request) {
		writeError(rw, http.StatusNotFound, "no such route")
	}))
	if opts.pprof {
		// pprof owns its sub-toolchain routing (Index serves the named
		// profiles); symbol accepts POST, so no method qualifiers here.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	var h http.Handler = mux
	if opts.accessLog != nil {
		h = obs.AccessLog(opts.accessLog, h)
	}
	return h
}

func (s *server) handleNetwork(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, map[string]any{
		"markets":  len(s.net.Markets),
		"enodebs":  len(s.net.ENodeBs),
		"carriers": len(s.net.Carriers),
		"schema": map[string]int{
			"parameters": s.schema.Len(),
			"singular":   len(s.schema.Singular()),
			"pairwise":   len(s.schema.PairWise()),
		},
	})
}

func (s *server) handleCarrier(rw http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/carriers/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= len(s.net.Carriers) {
		writeError(rw, http.StatusNotFound, "unknown carrier")
		return
	}
	c := &s.net.Carriers[id]
	attrs := map[string]string{}
	names := attributeNames()
	for i, v := range c.AttributeVector() {
		attrs[names[i]] = v
	}
	writeJSON(rw, map[string]any{
		"id":         c.ID,
		"enodeb":     c.ENodeB,
		"face":       c.Face,
		"attributes": attrs,
		"neighbors":  s.x2.CarrierNeighbors(c.ID),
	})
}

type recommendRequest struct {
	Carrier      *int `json:"carrier"`
	ENodeB       *int `json:"enodeb"`
	FrequencyMHz int  `json:"frequencyMHz"`
	// Pairwise includes pair-wise recommendations towards the carrier's
	// X2 neighbors.
	Pairwise bool `json:"pairwise"`
}

type recommendation struct {
	Param string `json:"param"`
	// Neighbor is -1 for singular parameters; 0 is a valid carrier id,
	// so the field is never omitted.
	Neighbor    int     `json:"neighbor"`
	Value       float64 `json:"value"`
	Confidence  float64 `json:"confidence"`
	Supported   bool    `json:"supported"`
	Explanation string  `json:"explanation"`
	// Evidence diagnostics (see internal/learn.Diag): the relaxation
	// level the vote settled at and the size of the voting pool.
	RelaxationLevel int `json:"relaxationLevel"`
	Candidates      int `json:"candidates"`
}

// handleRecommend serves both request forms of POST /v1/recommend: a
// single request object (the original API, response shape unchanged) and
// an array of request objects, answered item by item. Batch items fail
// independently — a bad carrier id yields {"error": ...} in that item's
// slot while its siblings are still recommended — so one malformed entry
// never turns a 200 into a 400 for the rest of the batch.
func (s *server) handleRecommend(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if isJSONArray(body) {
		s.handleRecommendBatch(rw, r, body)
		return
	}
	var req recommendRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	s.observeBatchSize(1)
	carrier, neighbors, status, msg := s.resolveRecommend(req)
	if status != 0 {
		writeError(rw, status, msg)
		return
	}
	recs, err := s.engine.RecommendContext(r.Context(), carrier, neighbors)
	if err != nil {
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	// The root span's trace id joins the response, the span tree at
	// /debug/traces and the audit records (present at any sample rate).
	traceID := requestTraceID(r)
	writeJSON(rw, map[string]any{
		"carrier":         carrier.ID,
		"traceId":         traceID,
		"recommendations": s.renderRecommendations(carrier, recs, traceID),
	})
}

// batchEntry is one item's slot in a batch response: recommendations or
// an error, never both.
type batchEntry struct {
	Carrier         int              `json:"carrier"`
	Error           string           `json:"error,omitempty"`
	Recommendations []recommendation `json:"recommendations,omitempty"`
}

// handleRecommendBatch answers the array form: every item resolves and
// recommends independently, valid items share one engine fan-out
// (Engine.RecommendBatch), and the response carries one entry per item in
// request order.
func (s *server) handleRecommendBatch(rw http.ResponseWriter, r *http.Request, body []byte) {
	var reqs []recommendRequest
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if len(reqs) == 0 {
		writeError(rw, http.StatusBadRequest, "empty batch")
		return
	}
	s.observeBatchSize(len(reqs))
	entries := make([]batchEntry, len(reqs))
	items := make([]auric.BatchItem, 0, len(reqs))
	itemOf := make([]int, 0, len(reqs)) // batch item -> request index
	for i, req := range reqs {
		carrier, neighbors, status, msg := s.resolveRecommend(req)
		if status != 0 {
			entries[i] = batchEntry{Carrier: -1, Error: msg}
			continue
		}
		entries[i].Carrier = int(carrier.ID)
		items = append(items, auric.BatchItem{Carrier: carrier, Neighbors: neighbors})
		itemOf = append(itemOf, i)
	}
	traceID := requestTraceID(r)
	if len(items) > 0 {
		results, err := s.engine.RecommendBatch(r.Context(), items)
		if err != nil {
			writeError(rw, http.StatusInternalServerError, err.Error())
			return
		}
		for bi, res := range results {
			e := &entries[itemOf[bi]]
			if res.Err != nil {
				e.Error = res.Err.Error()
				continue
			}
			e.Recommendations = s.renderRecommendations(items[bi].Carrier, res.Recommendations, traceID)
		}
	}
	writeJSON(rw, map[string]any{
		"traceId": traceID,
		"results": entries,
	})
}

// resolveRecommend turns one request into the carrier to recommend for
// (and its pair-wise neighbors); a non-zero status reports a per-request
// resolution failure.
func (s *server) resolveRecommend(req recommendRequest) (carrier *auric.Carrier, neighbors []auric.CarrierID, status int, msg string) {
	switch {
	case req.Carrier != nil:
		id := *req.Carrier
		if id < 0 || id >= len(s.net.Carriers) {
			return nil, nil, http.StatusNotFound, "unknown carrier"
		}
		carrier = &s.net.Carriers[id]
		if req.Pairwise {
			neighbors = s.x2.CarrierNeighbors(carrier.ID)
		}
	case req.ENodeB != nil:
		enb := *req.ENodeB
		if enb < 0 || enb >= len(s.net.ENodeBs) {
			return nil, nil, http.StatusNotFound, "unknown eNodeB"
		}
		nc := s.newCarrierAt(auric.ENodeBID(enb))
		if nc == nil {
			return nil, nil, http.StatusConflict, "eNodeB hosts no carriers to derive from"
		}
		if req.FrequencyMHz != 0 {
			nc.FrequencyMHz = req.FrequencyMHz
		}
		carrier = nc
	default:
		return nil, nil, http.StatusBadRequest, "specify carrier or enodeb"
	}
	return carrier, neighbors, 0, ""
}

// renderRecommendations converts engine recommendations to response DTOs
// and feeds the per-value serving counter and audit log — shared by the
// single and batch forms so observability stays per-carrier either way.
func (s *server) renderRecommendations(carrier *auric.Carrier, recs []auric.Recommendation, traceID string) []recommendation {
	now := time.Now()
	out := make([]recommendation, 0, len(recs))
	for _, rec := range recs {
		out = append(out, recommendation{
			Param:           rec.Param,
			Neighbor:        int(rec.Neighbor),
			Value:           rec.Value,
			Confidence:      rec.Confidence,
			Supported:       rec.Supported,
			Explanation:     rec.Explanation,
			RelaxationLevel: rec.RelaxationLevel,
			Candidates:      rec.Candidates,
		})
		if s.recommendations != nil {
			s.recommendations.With(strconv.FormatBool(rec.Supported)).Inc()
		}
		if s.audit != nil {
			if err := s.audit.Append(audit.Record{
				Time:            now,
				TraceID:         traceID,
				Carrier:         int(carrier.ID),
				Param:           rec.Param,
				Neighbor:        int(rec.Neighbor),
				Value:           rec.Value,
				Label:           rec.Label,
				Confidence:      rec.Confidence,
				Supported:       rec.Supported,
				RelaxationLevel: rec.RelaxationLevel,
				Candidates:      rec.Candidates,
				VoteShare:       rec.VoteShare,
				ExactIndexHit:   rec.ExactIndexHit,
				Dependents:      rec.Dependents,
				Dropped:         rec.Dropped,
				Explanation:     rec.Explanation,
			}); err != nil {
				log.Printf("auricd: audit append: %v", err)
			}
		}
	}
	return out
}

// requestTraceID extracts the root span's trace id ("" when untraced).
func requestTraceID(r *http.Request) string {
	if sp := trace.FromContext(r.Context()); sp != nil {
		return sp.TraceID().String()
	}
	return ""
}

func (s *server) observeBatchSize(n int) {
	if s.batchSize != nil {
		s.batchSize.Observe(float64(n))
	}
}

// isJSONArray reports whether the body's first JSON token opens an array
// (the batch form of /v1/recommend).
func isJSONArray(body []byte) bool {
	for _, b := range body {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return b == '['
		}
	}
	return false
}

// jsonBufs pools response encode buffers: recommend responses run to
// hundreds of KB (65 parameters x explanation strings), and encoding into
// a pooled buffer instead of a per-response one keeps the serving path's
// allocation rate flat under load.
var jsonBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(rw http.ResponseWriter, v any) {
	buf := jsonBufs.Get().(*bytes.Buffer)
	defer jsonBufs.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("auricd: encoding response: %v", err)
		writeError(rw, http.StatusInternalServerError, "encoding response")
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	if _, err := rw.Write(buf.Bytes()); err != nil {
		log.Printf("auricd: writing response: %v", err)
	}
}

// writeError sends the JSON error shape every non-2xx response uses.
func writeError(rw http.ResponseWriter, status int, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(map[string]string{"error": msg})
}

// methodNotAllowed is the fallback handler registered on the
// method-unqualified pattern of every route.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Allow", allow)
		writeError(rw, http.StatusMethodNotAllowed, "method not allowed; use "+allow)
	}
}

func attributeNames() []string {
	return []string{
		"carrierFrequency", "carrierType", "carrierInfo", "morphology",
		"channelBandwidth", "downlinkMimoMode", "hardwareConfiguration",
		"expectedCellSize", "trackingAreaCode", "market", "vendor",
		"neighborChannel", "neighborsOnSameENodeB", "softwareVersion",
	}
}

// newCarrierAt synthesizes a launch-ready carrier on an existing eNodeB:
// via the generator when available, otherwise by copying a co-sited donor
// carrier (the vendor's own practice).
func (s *server) newCarrierAt(enb auric.ENodeBID) *auric.Carrier {
	id := auric.CarrierID(len(s.net.Carriers))
	if s.world != nil {
		s.newRNGMu.Lock()
		defer s.newRNGMu.Unlock()
		return s.world.NewCarrierAt(enb, id, s.newRNG)
	}
	e := &s.net.ENodeBs[enb]
	if len(e.Carriers) == 0 {
		return nil
	}
	donor := s.net.Carriers[e.Carriers[0]]
	donor.ID = id
	donor.ENodeB = enb
	donor.NeighborsOnENB = len(e.Carriers)
	return &donor
}
