// Command auricd serves configuration recommendations over HTTP, the way
// Auric is consumed inside the SmartLaunch automation (Sec 5).
//
// It generates (or, in a real deployment, would load) a network snapshot,
// trains the local collaborative-filtering engine, and serves:
//
//	GET  /healthz                 -> ok
//	GET  /v1/network              -> network summary JSON
//	GET  /v1/carriers/{id}        -> carrier attributes JSON
//	POST /v1/recommend            -> recommendations for a carrier
//
// The recommend body identifies either an existing carrier by id, or a new
// carrier by eNodeB + frequency:
//
//	{"carrier": 123}
//	{"enodeb": 45, "frequencyMHz": 1900}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"auric"
	"auric/internal/rng"
	"auric/internal/snapshot"
)

type server struct {
	schema *auric.Schema
	net    *auric.Network
	x2     *auric.X2Graph
	engine *auric.Engine
	// world is present when the network was generated in-process; it
	// enables richer new-carrier synthesis. Snapshot-served networks run
	// with world == nil and derive new carriers from a co-sited donor.
	world  *auric.World
	newRNG *rng.RNG
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8400", "listen address")
		seed    = flag.Uint64("seed", 1, "network generation seed")
		markets = flag.Int("markets", 4, "number of markets")
		enbs    = flag.Int("enbs", 30, "eNodeBs per market")
		load    = flag.String("load", "", "serve a network snapshot (auricgen -save) instead of generating")
		workers = flag.Int("workers", 0, "train/recommend worker pool size (0 = all CPUs)")
	)
	flag.Parse()

	s := &server{newRNG: rng.New(*seed ^ 0xd)}
	if *load != "" {
		log.Printf("loading snapshot %s", *load)
		net, cfg, err := snapshot.Load(*load)
		if err != nil {
			log.Fatal(err)
		}
		s.schema, s.net = cfg.Schema(), net
		s.x2 = auric.BuildX2(net)
		log.Printf("training local collaborative-filtering engine on %d carriers", len(net.Carriers))
		s.engine = auric.NewEngine(s.schema, auric.EngineOptions{Local: true, Workers: *workers})
		if err := s.engine.Train(net, s.x2, cfg); err != nil {
			log.Fatal(err)
		}
	} else {
		log.Printf("generating network (seed=%d, %d markets x %d eNodeBs)", *seed, *markets, *enbs)
		w := auric.SimulateNetwork(auric.NetworkOptions{Seed: *seed, Markets: *markets, ENodeBsPerMarket: *enbs})
		log.Printf("training local collaborative-filtering engine on %d carriers", len(w.Net.Carriers))
		engine := auric.NewEngine(w.Schema, auric.EngineOptions{Local: true, Workers: *workers})
		if err := engine.Train(w.Net, w.X2, w.Current); err != nil {
			log.Fatal(err)
		}
		s.world, s.engine = w, engine
		s.schema, s.net, s.x2 = w.Schema, w.Net, w.X2
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("GET /v1/network", s.handleNetwork)
	mux.HandleFunc("GET /v1/carriers/", s.handleCarrier)
	mux.HandleFunc("POST /v1/recommend", s.handleRecommend)

	log.Printf("auricd listening on http://%s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func (s *server) handleNetwork(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, map[string]any{
		"markets":  len(s.net.Markets),
		"enodebs":  len(s.net.ENodeBs),
		"carriers": len(s.net.Carriers),
		"schema": map[string]int{
			"parameters": s.schema.Len(),
			"singular":   len(s.schema.Singular()),
			"pairwise":   len(s.schema.PairWise()),
		},
	})
}

func (s *server) handleCarrier(rw http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/carriers/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= len(s.net.Carriers) {
		http.Error(rw, "unknown carrier", http.StatusNotFound)
		return
	}
	c := &s.net.Carriers[id]
	attrs := map[string]string{}
	names := attributeNames()
	for i, v := range c.AttributeVector() {
		attrs[names[i]] = v
	}
	writeJSON(rw, map[string]any{
		"id":         c.ID,
		"enodeb":     c.ENodeB,
		"face":       c.Face,
		"attributes": attrs,
		"neighbors":  s.x2.CarrierNeighbors(c.ID),
	})
}

type recommendRequest struct {
	Carrier      *int `json:"carrier"`
	ENodeB       *int `json:"enodeb"`
	FrequencyMHz int  `json:"frequencyMHz"`
	// Pairwise includes pair-wise recommendations towards the carrier's
	// X2 neighbors.
	Pairwise bool `json:"pairwise"`
}

type recommendation struct {
	Param       string  `json:"param"`
	Neighbor    int     `json:"neighbor,omitempty"`
	Value       float64 `json:"value"`
	Confidence  float64 `json:"confidence"`
	Supported   bool    `json:"supported"`
	Explanation string  `json:"explanation"`
}

func (s *server) handleRecommend(rw http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var (
		carrier   *auric.Carrier
		neighbors []auric.CarrierID
	)
	switch {
	case req.Carrier != nil:
		id := *req.Carrier
		if id < 0 || id >= len(s.net.Carriers) {
			http.Error(rw, "unknown carrier", http.StatusNotFound)
			return
		}
		carrier = &s.net.Carriers[id]
		if req.Pairwise {
			neighbors = s.x2.CarrierNeighbors(carrier.ID)
		}
	case req.ENodeB != nil:
		enb := *req.ENodeB
		if enb < 0 || enb >= len(s.net.ENodeBs) {
			http.Error(rw, "unknown eNodeB", http.StatusNotFound)
			return
		}
		nc := s.newCarrierAt(auric.ENodeBID(enb))
		if nc == nil {
			http.Error(rw, "eNodeB hosts no carriers to derive from", http.StatusConflict)
			return
		}
		if req.FrequencyMHz != 0 {
			nc.FrequencyMHz = req.FrequencyMHz
		}
		carrier = nc
	default:
		http.Error(rw, "specify carrier or enodeb", http.StatusBadRequest)
		return
	}

	recs, err := s.engine.Recommend(carrier, neighbors)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]recommendation, 0, len(recs))
	for _, rec := range recs {
		out = append(out, recommendation{
			Param:       rec.Param,
			Neighbor:    int(rec.Neighbor),
			Value:       rec.Value,
			Confidence:  rec.Confidence,
			Supported:   rec.Supported,
			Explanation: rec.Explanation,
		})
	}
	writeJSON(rw, map[string]any{
		"carrier":         carrier.ID,
		"recommendations": out,
	})
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("auricd: encoding response: %v", err)
	}
}

func attributeNames() []string {
	return []string{
		"carrierFrequency", "carrierType", "carrierInfo", "morphology",
		"channelBandwidth", "downlinkMimoMode", "hardwareConfiguration",
		"expectedCellSize", "trackingAreaCode", "market", "vendor",
		"neighborChannel", "neighborsOnSameENodeB", "softwareVersion",
	}
}

// newCarrierAt synthesizes a launch-ready carrier on an existing eNodeB:
// via the generator when available, otherwise by copying a co-sited donor
// carrier (the vendor's own practice).
func (s *server) newCarrierAt(enb auric.ENodeBID) *auric.Carrier {
	id := auric.CarrierID(len(s.net.Carriers))
	if s.world != nil {
		return s.world.NewCarrierAt(enb, id, s.newRNG)
	}
	e := &s.net.ENodeBs[enb]
	if len(e.Carriers) == 0 {
		return nil
	}
	donor := s.net.Carriers[e.Carriers[0]]
	donor.ID = id
	donor.ENodeB = enb
	donor.NeighborsOnENB = len(e.Carriers)
	return &donor
}
