package main

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"auric"
	"auric/internal/audit"
	"auric/internal/obs"
	"auric/internal/rng"
	"auric/internal/snapshot"
	"auric/internal/trace"
)

func testServer(t *testing.T) *server {
	t.Helper()
	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: 2, Markets: 1, ENodeBsPerMarket: 10})
	engine := auric.NewShardedEngine(w.Schema, auric.EngineOptions{Local: true})
	if _, err := engine.Load(w.Net, w.X2, w.Current); err != nil {
		t.Fatal(err)
	}
	return &server{
		schema: w.Schema, world: w, engine: engine, newRNG: rng.New(1),
		source: func() (*auric.Network, *auric.X2Graph, *auric.Config, error) {
			return w.Net, w.X2, w.Current, nil
		},
		// One-carrier flush chunks so streaming tests observe every line.
		streamChunk: 1,
	}
}

func TestHandleNetwork(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleNetwork(rec, httptest.NewRequest("GET", "/v1/network", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["carriers"].(float64) == 0 {
		t.Error("no carriers reported")
	}
}

func TestHandleCarrier(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleCarrier(rec, httptest.NewRequest("GET", "/v1/carriers/3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		ID         int               `json:"id"`
		Attributes map[string]string `json:"attributes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.ID != 3 || body.Attributes["morphology"] == "" {
		t.Errorf("carrier body = %+v", body)
	}

	rec = httptest.NewRecorder()
	s.handleCarrier(rec, httptest.NewRequest("GET", "/v1/carriers/999999", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown carrier status = %d", rec.Code)
	}
}

func TestHandleRecommendExisting(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"carrier": 5}`))
	s.handleRecommend(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Recommendations []recommendation `json:"recommendations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Recommendations) != 39 {
		t.Fatalf("got %d recommendations, want 39 singular", len(body.Recommendations))
	}
	for _, r := range body.Recommendations {
		if r.Param == "" || r.Explanation == "" {
			t.Fatalf("incomplete recommendation %+v", r)
		}
	}
}

func TestHandleRecommendNewCarrier(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/recommend",
		strings.NewReader(`{"enodeb": 4, "frequencyMHz": 1900}`))
	s.handleRecommend(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestHandleRecommendBadRequests(t *testing.T) {
	s := testServer(t)
	tests := []struct {
		body string
		want int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"carrier": 999999}`, http.StatusNotFound},
		{`{"enodeb": 999999}`, http.StatusNotFound},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range tests {
		rec := httptest.NewRecorder()
		s.handleRecommend(rec, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(tc.body)))
		if rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, rec.Code, tc.want)
		}
	}
}

// testHandler builds the full middleware stack over a fresh registry so
// metric assertions see only this test's traffic.
func testHandler(t *testing.T) (http.Handler, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	return newHandler(testServer(t), handlerOptions{registry: reg}), reg
}

func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var r io.Reader
	if body != "" {
		r = strings.NewReader(body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, r))
	return rec
}

func TestMuxHealthz(t *testing.T) {
	h, _ := testHandler(t)
	rec := do(h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestMuxMethodNotAllowed(t *testing.T) {
	h, _ := testHandler(t)
	tests := []struct{ method, path string }{
		{"GET", "/v1/recommend"},
		{"POST", "/v1/network"},
		{"DELETE", "/healthz"},
		{"POST", "/metrics"},
		{"GET", "/v1/reload"},
		{"POST", "/v1/shards"},
	}
	for _, tc := range tests {
		rec := do(h, tc.method, tc.path, "")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, rec.Code)
		}
		if rec.Header().Get("Allow") == "" {
			t.Errorf("%s %s: no Allow header", tc.method, tc.path)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Errorf("%s %s: body %q is not a JSON error", tc.method, tc.path, rec.Body.String())
		}
	}
}

func TestMuxJSONErrors(t *testing.T) {
	h, _ := testHandler(t)
	tests := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/recommend", "not json", http.StatusBadRequest},
		{"POST", "/v1/recommend", `{}`, http.StatusBadRequest},
		{"POST", "/v1/recommend", `{"carrier": 999999}`, http.StatusNotFound},
		{"GET", "/v1/carriers/banana", "", http.StatusNotFound},
		{"GET", "/no/such/route", "", http.StatusNotFound},
	}
	for _, tc := range tests {
		rec := do(h, tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s %s %q: status %d, want %d", tc.method, tc.path, tc.body, rec.Code, tc.want)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: content type %q, want application/json", tc.method, tc.path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
			t.Errorf("%s %s: body %q is not a JSON error", tc.method, tc.path, rec.Body.String())
		}
	}
}

// TestMetricsAdvance proves the serving counters move: a recommend call
// advances auric_http_requests_total and the latency histogram, and the
// advance is visible in the /metrics exposition.
func TestMetricsAdvance(t *testing.T) {
	h, reg := testHandler(t)

	before := do(h, "GET", "/metrics", "").Body.String()
	if strings.Contains(before, `auric_http_requests_total{code="2xx",route="/v1/recommend"}`) {
		t.Fatalf("recommend counter present before any recommend call:\n%s", before)
	}

	if rec := do(h, "POST", "/v1/recommend", `{"carrier": 5}`); rec.Code != http.StatusOK {
		t.Fatalf("recommend: %d %s", rec.Code, rec.Body.String())
	}
	after := do(h, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		`auric_http_requests_total{code="2xx",route="/v1/recommend"} 1`,
		`auric_http_request_seconds_count{route="/v1/recommend"} 1`,
		`auric_http_request_seconds_bucket{route="/v1/recommend",le="+Inf"} 1`,
		`auric_recommendations_total{supported="`,
		"auric_http_in_flight_requests 1", // the /metrics request itself
	} {
		if !strings.Contains(after, want) {
			t.Errorf("exposition missing %q after recommend; got:\n%s", want, after)
		}
	}

	// A 4xx lands in its own status class.
	do(h, "POST", "/v1/recommend", "not json")
	if n := obs.NewHTTPMetrics(reg).Requests.With("4xx", "/v1/recommend").Value(); n != 1 {
		t.Errorf("4xx recommend counter = %d, want 1", n)
	}
}

// TestEngineTimersExported asserts the process-global registry carries
// the pipeline stage timers once an engine has trained — what an
// operator sees when curling a live auricd's /metrics.
func TestEngineTimersExported(t *testing.T) {
	s := testServer(t) // trains an engine, feeding obs.Default()
	h := newHandler(s, handlerOptions{registry: obs.Default()})
	body := do(h, "GET", "/metrics", "").Body.String()
	for _, name := range []string{
		"auric_engine_train_seconds_count",
		"auric_engine_train_param_seconds_count",
		"auric_dataset_label_seconds_count",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	// The engine trained 65 parameter models at least once.
	for _, f := range obs.Default().Gather() {
		if f.Name == "auric_engine_train_param_seconds" && f.Series[0].Count < 65 {
			t.Errorf("train_param count = %d, want >= 65", f.Series[0].Count)
		}
	}
}

// TestServeGracefulShutdown runs the real serving loop on a random port,
// talks to it over TCP, then delivers SIGTERM and expects a clean (nil)
// return — the drain path the smoke target exercises end to end.
func TestServeGracefulShutdown(t *testing.T) {
	h, _ := testHandler(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serveOn(ln, h) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP: %d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
}

func TestSnapshotServedServer(t *testing.T) {
	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: 3, Markets: 1, ENodeBsPerMarket: 8})
	path := filepath.Join(t.TempDir(), "net.json.gz")
	if err := snapshot.Save(path, w.Net, w.Current); err != nil {
		t.Fatal(err)
	}
	net, cfg, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	x2 := auric.BuildX2(net)
	engine := auric.NewShardedEngine(cfg.Schema(), auric.EngineOptions{Local: true})
	if _, err := engine.Load(net, x2, cfg); err != nil {
		t.Fatal(err)
	}
	s := &server{schema: cfg.Schema(), engine: engine, newRNG: rng.New(1)}

	// New-carrier recommendation without a generator world: donor copy.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"enodeb": 2, "frequencyMHz": 2100}`))
	s.handleRecommend(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestRecommendTracedEndToEnd is the acceptance path of the tracing
// layer: one POST /v1/recommend must yield (a) a traceparent response
// header, (b) a span tree at /debug/traces whose recommend.param spans
// carry relaxation levels and candidate counts, and (c) an audit JSONL
// record sharing the same trace id.
func TestRecommendTracedEndToEnd(t *testing.T) {
	s := testServer(t)
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	al, err := audit.Open(auditPath, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.audit = al
	h := newHandler(s, handlerOptions{
		registry: obs.New(),
		tracer:   trace.New(trace.Options{SampleRate: 1}),
	})

	rec := do(h, "POST", "/v1/recommend", `{"carrier": 5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	tp := rec.Header().Get("traceparent")
	traceID, _, sampled, ok := trace.ParseTraceParent(tp)
	if !ok || !sampled {
		t.Fatalf("response traceparent %q invalid or unsampled", tp)
	}
	var resp struct {
		TraceID         string           `json:"traceId"`
		Recommendations []recommendation `json:"recommendations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != traceID.String() {
		t.Errorf("body traceId %q != header trace id %q", resp.TraceID, traceID)
	}
	for _, r := range resp.Recommendations {
		if r.Candidates <= 0 {
			t.Errorf("%s: response lacks candidate count", r.Param)
		}
	}

	// (b) The span tree is served at /debug/traces.
	dbg := do(h, "GET", "/debug/traces", "")
	if dbg.Code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", dbg.Code)
	}
	var traces struct {
		Traces []struct {
			TraceID string `json:"traceId"`
			Spans   []struct {
				Name  string         `json:"name"`
				Attrs map[string]any `json:"attrs"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(dbg.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	var tree *struct {
		TraceID string `json:"traceId"`
		Spans   []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"spans"`
	}
	for i := range traces.Traces {
		if traces.Traces[i].TraceID == traceID.String() {
			tree = &traces.Traces[i]
		}
	}
	if tree == nil {
		t.Fatalf("trace %s not at /debug/traces", traceID)
	}
	var paramSpans, annotated int
	for _, sp := range tree.Spans {
		if sp.Name != "recommend.param" {
			continue
		}
		paramSpans++
		_, hasLevel := sp.Attrs["relaxation_level"]
		_, hasCands := sp.Attrs["candidates"]
		if hasLevel && hasCands {
			annotated++
		}
	}
	if paramSpans != len(resp.Recommendations) {
		t.Errorf("recommend.param spans = %d, want %d", paramSpans, len(resp.Recommendations))
	}
	if annotated != paramSpans {
		t.Errorf("only %d of %d param spans carry evidence annotations", annotated, paramSpans)
	}

	// (c) The audit log holds one record per value, same trace id.
	if err := al.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(resp.Recommendations) {
		t.Fatalf("audit log has %d records, want %d", len(lines), len(resp.Recommendations))
	}
	for _, line := range lines {
		var r audit.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("invalid audit JSONL %q: %v", line, err)
		}
		if r.TraceID != traceID.String() {
			t.Errorf("audit record trace id %q != request trace id %q", r.TraceID, traceID)
		}
		if r.Param == "" || r.Candidates <= 0 || len(r.Dependents) == 0 {
			t.Errorf("audit record missing evidence: %+v", r)
		}
	}
}

// TestRuntimeMetricsServed asserts the Go runtime health metrics land in
// the same scrape as the serving metrics (the wiring main() performs).
func TestRuntimeMetricsServed(t *testing.T) {
	reg := obs.New()
	obs.RegisterRuntimeMetrics(reg)
	h := newHandler(testServer(t), handlerOptions{registry: reg})
	body := do(h, "GET", "/metrics", "").Body.String()
	for _, name := range []string{
		"auric_go_goroutines",
		"auric_go_heap_bytes",
		"auric_go_gc_pause_seconds_count",
		"auric_build_info{",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestDebugTracesMethodNotAllowed pins the 405 discipline on the new
// endpoint.
func TestDebugTracesMethodNotAllowed(t *testing.T) {
	h, _ := testHandler(t)
	if rec := do(h, "POST", "/debug/traces", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/traces status = %d, want 405", rec.Code)
	}
}

// TestHandleRecommendBatch pins the batch form of POST /v1/recommend: a
// mixed batch of valid and invalid items answers 200 with one entry per
// item in request order — per-item errors, not a whole-request failure —
// and each valid entry matches the single-object form for the same
// carrier.
func TestHandleRecommendBatch(t *testing.T) {
	s := testServer(t)
	body := `[
		{"carrier": 5},
		{"carrier": 999999},
		{"enodeb": 4, "frequencyMHz": 1900},
		{},
		{"carrier": 7, "pairwise": true}
	]`
	rec := httptest.NewRecorder()
	s.handleRecommend(rec, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []struct {
			Carrier         int              `json:"carrier"`
			Error           string           `json:"error"`
			Recommendations []recommendation `json:"recommendations"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(resp.Results))
	}
	for _, i := range []int{0, 2, 4} {
		r := resp.Results[i]
		if r.Error != "" || len(r.Recommendations) == 0 {
			t.Errorf("item %d: error=%q recs=%d, want recommendations", i, r.Error, len(r.Recommendations))
		}
	}
	if r := resp.Results[1]; r.Error != "unknown carrier" || r.Recommendations != nil {
		t.Errorf("item 1 = %+v, want per-item unknown-carrier error", r)
	}
	if r := resp.Results[3]; r.Error != "specify carrier or enodeb" {
		t.Errorf("item 3 error = %q", r.Error)
	}
	// Pairwise items include neighbor recommendations.
	sawNeighbor := false
	for _, r := range resp.Results[4].Recommendations {
		if r.Neighbor != 0 {
			sawNeighbor = true
		}
	}
	if !sawNeighbor {
		t.Error("pairwise batch item has no neighbor recommendations")
	}

	// The batch entry for carrier 5 equals the single-object response.
	single := httptest.NewRecorder()
	s.handleRecommend(single, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"carrier": 5}`)))
	var sresp struct {
		Recommendations []recommendation `json:"recommendations"`
	}
	if err := json.Unmarshal(single.Body.Bytes(), &sresp); err != nil {
		t.Fatal(err)
	}
	if len(sresp.Recommendations) != len(resp.Results[0].Recommendations) {
		t.Fatalf("batch item has %d recommendations, single call %d",
			len(resp.Results[0].Recommendations), len(sresp.Recommendations))
	}
	for i := range sresp.Recommendations {
		if sresp.Recommendations[i] != resp.Results[0].Recommendations[i] {
			t.Errorf("recommendation %d differs: batch %+v vs single %+v",
				i, resp.Results[0].Recommendations[i], sresp.Recommendations[i])
		}
	}
}

// TestHandleRecommendBatchDegenerate pins the malformed-batch responses.
func TestHandleRecommendBatchDegenerate(t *testing.T) {
	s := testServer(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`[]`, http.StatusBadRequest},
		{`[not json]`, http.StatusBadRequest},
		{`  [{"carrier": 5}]`, http.StatusOK}, // leading whitespace still batch
	} {
		rec := httptest.NewRecorder()
		s.handleRecommend(rec, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(tc.body)))
		if rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, rec.Code, tc.want)
		}
	}
}

// TestBatchSizeMetric asserts the batch-size histogram advances for both
// request forms through the full handler stack.
func TestBatchSizeMetric(t *testing.T) {
	h, _ := testHandler(t)
	if rec := do(h, "POST", "/v1/recommend", `{"carrier": 5}`); rec.Code != http.StatusOK {
		t.Fatalf("single: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(h, "POST", "/v1/recommend", `[{"carrier": 1}, {"carrier": 2}, {"carrier": 3}]`); rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body.String())
	}
	body := do(h, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		`auric_recommend_batch_size_count 2`,
		`auric_recommend_batch_size_sum 4`,
		`auric_recommend_batch_size_bucket{le="1"} 1`,
		`auric_recommend_batch_size_bucket{le="4"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// flushRecorder wraps a ResponseRecorder and records the body length at
// every Flush call — the observable proof that NDJSON lines leave the
// handler one at a time instead of with the final buffer.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes []int
}

func (f *flushRecorder) Flush() { f.flushes = append(f.flushes, f.Body.Len()) }

// TestHandleRecommendNDJSON pins the streaming batch contract: with
// "Accept: application/x-ndjson" the same batch answers as one compact
// JSON object per line, byte-identical to the buffered form's entries,
// flushed line by line in request order — and per-item failures ride
// inline as {"error": ...} lines without terminating the stream.
func TestHandleRecommendNDJSON(t *testing.T) {
	s := testServer(t)
	// Deterministic items only (no new-carrier synthesis, whose RNG draw
	// would differ between the two requests), with failures mid-stream.
	body := `[
		{"carrier": 5},
		{"carrier": 999999},
		{"carrier": 3},
		{},
		{"carrier": 7, "pairwise": true}
	]`

	buffered := httptest.NewRecorder()
	s.handleRecommend(buffered, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(body)))
	if buffered.Code != http.StatusOK {
		t.Fatalf("buffered status %d: %s", buffered.Code, buffered.Body.String())
	}
	var ref struct {
		Results []batchEntry `json:"results"`
	}
	if err := json.Unmarshal(buffered.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(body))
	req.Header.Set("Accept", "application/x-ndjson")
	fr := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	s.handleRecommend(fr, req)
	if fr.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", fr.Code, fr.Body.String())
	}
	if ct := fr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}

	raw := fr.Body.String()
	if !strings.HasSuffix(raw, "\n") {
		t.Fatal("stream does not end with a newline")
	}
	lines := strings.Split(strings.TrimSuffix(raw, "\n"), "\n")
	if len(lines) != len(ref.Results) {
		t.Fatalf("stream has %d lines, buffered response %d entries", len(lines), len(ref.Results))
	}

	// Byte identity: every line is the compact encoding of the buffered
	// form's entry at the same position.
	for i, line := range lines {
		want, err := json.Marshal(&ref.Results[i])
		if err != nil {
			t.Fatal(err)
		}
		if line != string(want) {
			t.Errorf("line %d = %s\nwant   %s", i, line, want)
		}
	}

	// Mid-stream failures stayed inline and did not kill their siblings.
	var streamed []batchEntry
	for _, line := range lines {
		var e batchEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		streamed = append(streamed, e)
	}
	for _, i := range []int{0, 2, 4} {
		if streamed[i].Error != "" || len(streamed[i].Recommendations) == 0 {
			t.Errorf("item %d: error=%q recs=%d, want recommendations", i, streamed[i].Error, len(streamed[i].Recommendations))
		}
	}
	if streamed[1].Error != "unknown carrier" {
		t.Errorf("item 1 error = %q, want unknown carrier", streamed[1].Error)
	}
	if streamed[3].Error != "specify carrier or enodeb" {
		t.Errorf("item 3 error = %q", streamed[3].Error)
	}

	// Flush discipline: one flush per line, each flush boundary a full
	// line, and the first line flushed long before the body completed.
	if len(fr.flushes) != len(lines) {
		t.Fatalf("%d flushes for %d lines, want one flush per line", len(fr.flushes), len(lines))
	}
	for i, off := range fr.flushes {
		if off == 0 || raw[off-1] != '\n' {
			t.Errorf("flush %d at offset %d does not end on a line boundary", i, off)
		}
		if i > 0 && off <= fr.flushes[i-1] {
			t.Errorf("flush %d offset %d did not advance past %d", i, off, fr.flushes[i-1])
		}
	}
	if fr.flushes[0] >= len(raw) {
		t.Error("first line was not flushed before the stream completed")
	}
}

// TestMuxNDJSONThroughStack runs the streaming form through the full
// middleware stack (metrics, tracing): the Flusher must survive the
// response-writer wrappers so lines reach the transport incrementally.
func TestMuxNDJSONThroughStack(t *testing.T) {
	h, _ := testHandler(t)
	req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`[{"carrier": 1}, {"carrier": 2}]`))
	req.Header.Set("Accept", "application/x-ndjson")
	fr := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(fr, req)
	if fr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", fr.Code, fr.Body.String())
	}
	if lines := strings.Count(fr.Body.String(), "\n"); lines != 2 {
		t.Fatalf("stream has %d lines, want 2", lines)
	}
	if len(fr.flushes) != 2 {
		t.Errorf("%d flushes reached the recorder through the middleware stack, want 2", len(fr.flushes))
	}
}

// TestHandleReloadAndShards drives the zero-downtime reload endpoint and
// the shard-layout view: POST /v1/reload advances the generation, GET
// /v1/shards reports the new generation with every carrier accounted to a
// market shard, and serving keeps answering afterwards.
func TestHandleReloadAndShards(t *testing.T) {
	h, _ := testHandler(t)

	rec := do(h, "POST", "/v1/reload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", rec.Code, rec.Body.String())
	}
	var reload struct {
		Generation int64   `json:"generation"`
		Carriers   int     `json:"carriers"`
		Seconds    float64 `json:"seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reload); err != nil {
		t.Fatal(err)
	}
	if reload.Generation != 2 {
		t.Errorf("generation after one reload = %d, want 2", reload.Generation)
	}
	if reload.Carriers == 0 || reload.Seconds <= 0 {
		t.Errorf("reload response %+v lacks carriers/seconds", reload)
	}

	rec = do(h, "GET", "/v1/shards", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("shards status %d: %s", rec.Code, rec.Body.String())
	}
	var shards struct {
		Generation int64 `json:"generation"`
		Shards     []struct {
			Market   int    `json:"market"`
			Name     string `json:"name"`
			Carriers int    `json:"carriers"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &shards); err != nil {
		t.Fatal(err)
	}
	if shards.Generation != reload.Generation {
		t.Errorf("shards generation %d != reload generation %d", shards.Generation, reload.Generation)
	}
	sum := 0
	for _, sh := range shards.Shards {
		if sh.Name == "" {
			t.Errorf("shard %d has no market name", sh.Market)
		}
		sum += sh.Carriers
	}
	if sum != reload.Carriers {
		t.Errorf("shard carriers sum to %d, want %d", sum, reload.Carriers)
	}

	if rec := do(h, "POST", "/v1/recommend", `{"carrier": 5}`); rec.Code != http.StatusOK {
		t.Fatalf("recommend after reload: %d %s", rec.Code, rec.Body.String())
	}
}

// TestHandleReloadFailure pins the failure contract: a snapshot source
// error answers 500 and leaves the serving generation untouched.
func TestHandleReloadFailure(t *testing.T) {
	s := testServer(t)
	gen := s.engine.Generation()
	s.source = func() (*auric.Network, *auric.X2Graph, *auric.Config, error) {
		return nil, nil, nil, errors.New("snapshot store unreachable")
	}
	rec := httptest.NewRecorder()
	s.handleReload(rec, httptest.NewRequest("POST", "/v1/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("reload status %d, want 500", rec.Code)
	}
	if g := s.engine.Generation(); g != gen {
		t.Errorf("failed reload moved the generation from %d to %d", gen, g)
	}
	if r := httptest.NewRecorder(); true {
		s.handleRecommend(r, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"carrier": 5}`)))
		if r.Code != http.StatusOK {
			t.Errorf("serving broken after failed reload: %d %s", r.Code, r.Body.String())
		}
	}
}

// Concurrent new-carrier requests share the server's synthesis RNG; the
// tight loop exists so `go test -race` gates the lock around it (the
// full HTTP path spends too little time in the draw to interleave).
func TestConcurrentNewCarrierRecommends(t *testing.T) {
	s := testServer(t)
	network, _, _, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if c := s.newCarrierAt(network, 2); c == nil {
					t.Error("newCarrierAt returned nil")
					return
				}
			}
		}()
	}
	wg.Wait()
	rec := httptest.NewRecorder()
	s.handleRecommend(rec, httptest.NewRequest("POST", "/v1/recommend",
		strings.NewReader(`[{"enodeb": 2}, {"enodeb": 5}]`)))
	if rec.Code != http.StatusOK {
		t.Errorf("status %d: %s", rec.Code, rec.Body.String())
	}
}
