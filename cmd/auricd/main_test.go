package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"auric"
	"auric/internal/rng"
	"auric/internal/snapshot"
)

func testServer(t *testing.T) *server {
	t.Helper()
	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: 2, Markets: 1, ENodeBsPerMarket: 10})
	engine := auric.NewEngine(w.Schema, auric.EngineOptions{Local: true})
	if err := engine.Train(w.Net, w.X2, w.Current); err != nil {
		t.Fatal(err)
	}
	return &server{
		schema: w.Schema, net: w.Net, x2: w.X2,
		world: w, engine: engine, newRNG: rng.New(1),
	}
}

func TestHandleNetwork(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleNetwork(rec, httptest.NewRequest("GET", "/v1/network", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["carriers"].(float64) == 0 {
		t.Error("no carriers reported")
	}
}

func TestHandleCarrier(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleCarrier(rec, httptest.NewRequest("GET", "/v1/carriers/3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		ID         int               `json:"id"`
		Attributes map[string]string `json:"attributes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.ID != 3 || body.Attributes["morphology"] == "" {
		t.Errorf("carrier body = %+v", body)
	}

	rec = httptest.NewRecorder()
	s.handleCarrier(rec, httptest.NewRequest("GET", "/v1/carriers/999999", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown carrier status = %d", rec.Code)
	}
}

func TestHandleRecommendExisting(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"carrier": 5}`))
	s.handleRecommend(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Recommendations []recommendation `json:"recommendations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Recommendations) != 39 {
		t.Fatalf("got %d recommendations, want 39 singular", len(body.Recommendations))
	}
	for _, r := range body.Recommendations {
		if r.Param == "" || r.Explanation == "" {
			t.Fatalf("incomplete recommendation %+v", r)
		}
	}
}

func TestHandleRecommendNewCarrier(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/recommend",
		strings.NewReader(`{"enodeb": 4, "frequencyMHz": 1900}`))
	s.handleRecommend(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestHandleRecommendBadRequests(t *testing.T) {
	s := testServer(t)
	tests := []struct {
		body string
		want int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"carrier": 999999}`, http.StatusNotFound},
		{`{"enodeb": 999999}`, http.StatusNotFound},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range tests {
		rec := httptest.NewRecorder()
		s.handleRecommend(rec, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(tc.body)))
		if rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, rec.Code, tc.want)
		}
	}
}

func TestSnapshotServedServer(t *testing.T) {
	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: 3, Markets: 1, ENodeBsPerMarket: 8})
	path := filepath.Join(t.TempDir(), "net.json.gz")
	if err := snapshot.Save(path, w.Net, w.Current); err != nil {
		t.Fatal(err)
	}
	net, cfg, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	x2 := auric.BuildX2(net)
	engine := auric.NewEngine(cfg.Schema(), auric.EngineOptions{Local: true})
	if err := engine.Train(net, x2, cfg); err != nil {
		t.Fatal(err)
	}
	s := &server{schema: cfg.Schema(), net: net, x2: x2, engine: engine, newRNG: rng.New(1)}

	// New-carrier recommendation without a generator world: donor copy.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"enodeb": 2, "frequencyMHz": 2100}`))
	s.handleRecommend(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}
