// Live carrier ingest: POST /v1/carriers applies upserts and DELETE
// /v1/carriers/{id} tombstones, patching the affected per-parameter models
// in place (ShardedEngine.Apply) instead of retraining the shard. With
// -journal, every acknowledged mutation is first appended to a
// sequence-numbered JSONL delta journal; on startup the server replays the
// journal over the latest compacted snapshot and arrives at the state it
// went down with. POST /v1/compact — or the journal outgrowing
// -journal-max-bytes — folds the journal into a fresh snapshot
// (<journal>.snapshot) and resets it.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"auric"
	"auric/internal/journal"
	"auric/internal/lte"
	"auric/internal/paramspec"
	"auric/internal/snapshot"
)

// errJournal marks a failure in the durability path: the delta applied to
// the live engine but was not journaled, so a restart would lose it.
// Handlers map it to 500 — the server is at fault — where an engine
// rejection (semantic conflict) is a 409.
var errJournal = errors.New("journal failure")

// ingestStatus maps an applyDelta error to its HTTP status.
func ingestStatus(err error) int {
	if errors.Is(err, errJournal) {
		return http.StatusInternalServerError
	}
	return http.StatusConflict
}

// carrierSpec is the wire form of a carrier in the live-ingest API: enum
// attributes travel as their canonical names (the strings /v1/carriers/{id}
// reports), not internal codes. A nil or -1 ID creates a carrier; an
// existing ID replaces that carrier's attributes wholesale.
type carrierSpec struct {
	ID              *int    `json:"id,omitempty"`
	ENodeB          int     `json:"enodeb"`
	Face            int     `json:"face"`
	FrequencyMHz    int     `json:"frequencyMHz"`
	Type            string  `json:"type,omitempty"`
	Info            string  `json:"info,omitempty"`
	Morphology      string  `json:"morphology,omitempty"`
	BandwidthMHz    int     `json:"bandwidthMHz"`
	MIMOMode        string  `json:"mimoMode"`
	Hardware        string  `json:"hardware"`
	CellSizeMi      int     `json:"cellSizeMi"`
	TAC             int     `json:"tac"`
	Market          int     `json:"market"`
	Vendor          string  `json:"vendor"`
	NeighborChan    int     `json:"neighborChan"`
	NeighborsOnENB  int     `json:"neighborsOnENB"`
	SoftwareVersion string  `json:"softwareVersion"`
	Terrain         string  `json:"terrain,omitempty"`
	Lat             float64 `json:"lat"`
	Lon             float64 `json:"lon"`
}

// ingestPair sets pair-wise parameter values toward one neighbor carrier,
// keyed by parameter name.
type ingestPair struct {
	To     int                `json:"to"`
	Values map[string]float64 `json:"values"`
}

// ingestItem is one upsert of the live-ingest API: the carrier record plus
// optional singular parameter values (by name) and pair-wise relations.
type ingestItem struct {
	Carrier carrierSpec        `json:"carrier"`
	Config  map[string]float64 `json:"config,omitempty"`
	Pairs   []ingestPair       `json:"pairs,omitempty"`
}

// wireDelta is the journaled form of a mutation batch — exactly what came
// over the wire, so replay re-resolves it against the same fixed schema and
// reproduces the same engine calls.
type wireDelta struct {
	Upserts    []ingestItem `json:"upserts,omitempty"`
	Tombstones []int        `json:"tombstones,omitempty"`
}

// resolveUpsert converts one wire item into an engine upsert: enum names
// parse to their codes, parameter names to schema indices. Errors here are
// wire-level (unknown name, wrong kind) and reported per item; semantic
// validation (unknown market, tombstoned id) is the engine's.
func (s *server) resolveUpsert(it ingestItem) (auric.Upsert, error) {
	cs := it.Carrier
	c := auric.Carrier{
		ID:              -1,
		ENodeB:          auric.ENodeBID(cs.ENodeB),
		Face:            cs.Face,
		FrequencyMHz:    cs.FrequencyMHz,
		Info:            cs.Info,
		BandwidthMHz:    cs.BandwidthMHz,
		MIMOMode:        cs.MIMOMode,
		Hardware:        cs.Hardware,
		CellSizeMi:      cs.CellSizeMi,
		TAC:             cs.TAC,
		Market:          cs.Market,
		Vendor:          cs.Vendor,
		NeighborChan:    cs.NeighborChan,
		NeighborsOnENB:  cs.NeighborsOnENB,
		SoftwareVersion: cs.SoftwareVersion,
		Lat:             cs.Lat,
		Lon:             cs.Lon,
	}
	if cs.ID != nil {
		c.ID = auric.CarrierID(*cs.ID)
	}
	var err error
	if c.Type, err = lte.ParseCarrierType(cs.Type); err != nil {
		return auric.Upsert{}, err
	}
	if c.Morphology, err = lte.ParseMorphology(cs.Morphology); err != nil {
		return auric.Upsert{}, err
	}
	if c.Terrain, err = lte.ParseTerrain(cs.Terrain); err != nil {
		return auric.Upsert{}, err
	}
	u := auric.Upsert{Carrier: c}
	if len(it.Config) > 0 {
		u.Config = make(map[int]float64, len(it.Config))
		for name, v := range it.Config {
			pi, err := s.paramIndex(name, paramspec.Singular)
			if err != nil {
				return auric.Upsert{}, err
			}
			u.Config[pi] = v
		}
	}
	for _, p := range it.Pairs {
		vals := make(map[int]float64, len(p.Values))
		for name, v := range p.Values {
			pi, err := s.paramIndex(name, paramspec.PairWise)
			if err != nil {
				return auric.Upsert{}, err
			}
			vals[pi] = v
		}
		u.Pairs = append(u.Pairs, auric.PairValues{To: auric.CarrierID(p.To), Values: vals})
	}
	return u, nil
}

// paramIndex resolves a parameter name to its schema index, checking kind.
func (s *server) paramIndex(name string, kind paramspec.Kind) (int, error) {
	pi := s.schema.IndexOf(name)
	if pi < 0 {
		return 0, fmt.Errorf("unknown parameter %q", name)
	}
	if got := s.schema.At(pi).Kind; got != kind {
		want := "singular"
		if kind == paramspec.PairWise {
			want = "pair-wise"
		}
		return 0, fmt.Errorf("parameter %q is not %s", name, want)
	}
	return pi, nil
}

// resolveDelta resolves a journaled wire delta for replay.
func (s *server) resolveDelta(wd wireDelta) (auric.Delta, error) {
	var d auric.Delta
	for i, it := range wd.Upserts {
		u, err := s.resolveUpsert(it)
		if err != nil {
			return auric.Delta{}, fmt.Errorf("upsert %d: %w", i, err)
		}
		d.Upserts = append(d.Upserts, u)
	}
	for _, id := range wd.Tombstones {
		d.Tombstones = append(d.Tombstones, auric.CarrierID(id))
	}
	return d, nil
}

// ingestEntry is one item's slot in an ingest response: the assigned
// carrier id, or the wire-level error that rejected the batch.
type ingestEntry struct {
	ID    int    `json:"id"`
	Error string `json:"error,omitempty"`
}

// handleIngest serves POST /v1/carriers: a single upsert object or an
// array. The batch is atomic — it applies as one engine delta or not at
// all — but validation errors are reported per item, in request order, so
// the client sees every bad slot at once. The mutation is journaled after
// it applies and acknowledged only once it is on disk.
func (s *server) handleIngest(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	var items []ingestItem
	if isJSONArray(body) {
		if err := json.Unmarshal(body, &items); err != nil {
			writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
			return
		}
	} else {
		var it ingestItem
		if err := json.Unmarshal(body, &it); err != nil {
			writeError(rw, http.StatusBadRequest, "bad request: "+err.Error())
			return
		}
		items = []ingestItem{it}
	}
	if len(items) == 0 {
		writeError(rw, http.StatusBadRequest, "empty batch")
		return
	}

	entries := make([]ingestEntry, len(items))
	ups := make([]auric.Upsert, 0, len(items))
	bad := 0
	for i, it := range items {
		u, err := s.resolveUpsert(it)
		if err != nil {
			entries[i] = ingestEntry{ID: -1, Error: err.Error()}
			bad++
			continue
		}
		entries[i].ID = -1 // assigned below on success
		ups = append(ups, u)
	}
	if bad > 0 {
		s.countIngest("upsert", false, len(items))
		writeJSONStatus(rw, http.StatusBadRequest, map[string]any{
			"error":   fmt.Sprintf("%d of %d items failed validation; nothing applied", bad, len(items)),
			"results": entries,
		})
		return
	}

	res, err := s.applyDelta(wireDelta{Upserts: items}, auric.Delta{Upserts: ups})
	if err != nil {
		s.countIngest("upsert", false, len(items))
		writeError(rw, ingestStatus(err), err.Error())
		return
	}
	s.countIngest("upsert", true, len(items))
	for i, id := range res.Assigned {
		entries[i].ID = int(id)
	}
	writeJSON(rw, map[string]any{
		"generation": res.Generation,
		"patched":    res.Patched,
		"refit":      res.Refit,
		"results":    entries,
	})
}

// handleCarrierDelete serves DELETE /v1/carriers/{id}: the carrier's rows
// leave every model (tombstone), its id stays allocated, and further
// upserts of the id are rejected.
func (s *server) handleCarrierDelete(rw http.ResponseWriter, r *http.Request) {
	net, _, _, ok := s.inventory(rw)
	if !ok {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/carriers/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= len(net.Carriers) {
		writeError(rw, http.StatusNotFound, "unknown carrier")
		return
	}
	res, err := s.applyDelta(
		wireDelta{Tombstones: []int{id}},
		auric.Delta{Tombstones: []auric.CarrierID{auric.CarrierID(id)}})
	if err != nil {
		s.countIngest("tombstone", false, 1)
		writeError(rw, ingestStatus(err), err.Error())
		return
	}
	s.countIngest("tombstone", true, 1)
	writeJSON(rw, map[string]any{
		"generation": res.Generation,
		"tombstoned": id,
		"patched":    res.Patched,
		"refit":      res.Refit,
	})
}

// applyDelta is the single mutation path: apply to the engine, then append
// the wire form to the journal, then (maybe) compact — all under reloadMu
// so ingest, compaction and snapshot reload serialize. A delta is
// acknowledged only after its journal append fsyncs; if the append fails
// the state is live but not durable, which the caller reports as a 500 and
// the log flags loudly.
func (s *server) applyDelta(wd wireDelta, d auric.Delta) (auric.ApplyResult, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	res, err := s.engine.Apply(d)
	if err != nil {
		return res, err
	}
	if s.journal != nil {
		data, err := json.Marshal(wd)
		if err != nil {
			return res, fmt.Errorf("%w: encode: %w", errJournal, err)
		}
		if _, err := s.journal.Append("delta", data); err != nil {
			log.Printf("auricd: APPLIED DELTA NOT JOURNALED (a restart loses it): %v", err)
			return res, fmt.Errorf("%w: append: %w", errJournal, err)
		}
		s.updateJournalGauges()
		if s.journalMax > 0 && s.journal.Size() > s.journalMax {
			if err := s.compactLocked("size"); err != nil {
				// Ingest stays up on a failed compaction; the journal just
				// keeps growing and the next append retries the fold.
				log.Printf("auricd: size-triggered compaction failed: %v", err)
			}
		}
	}
	return res, nil
}

// handleCompact serves POST /v1/compact: fold the journal into the
// compacted snapshot and reset it. Without -journal there is nothing to
// compact.
func (s *server) handleCompact(rw http.ResponseWriter, _ *http.Request) {
	if s.journal == nil {
		writeError(rw, http.StatusPreconditionFailed, "compaction requires -journal")
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	folded := s.journal.Entries()
	if err := s.compactLocked("http"); err != nil {
		writeError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(rw, map[string]any{
		"snapshot": s.snapPath,
		"folded":   folded,
		"seconds":  time.Since(start).Seconds(),
	})
}

// compactLocked folds the live serving state (including every journaled
// delta) into the compacted snapshot, then resets the journal. The
// snapshot records the last folded sequence number as its fence: a crash
// between the snapshot write and the journal reset is safe, because
// startup skips journal entries at or below the fence. Caller holds
// reloadMu.
func (s *server) compactLocked(trigger string) error {
	start := time.Now()
	net, cfg, dead, _, err := s.engine.SnapshotState()
	if err == nil {
		fence := s.journal.NextSeq() - 1
		if err = snapshot.SaveFull(s.snapPath, net, cfg, dead, fence); err == nil {
			err = s.journal.Reset()
		}
	}
	if s.compactions != nil {
		s.compactions.With(trigger, strconv.FormatBool(err == nil)).Inc()
	}
	if err != nil {
		return fmt.Errorf("compact: %w", err)
	}
	s.updateJournalGauges()
	log.Printf("auricd: journal compacted into %s (trigger=%s, %d carriers, %d tombstones, %.2fs)",
		s.snapPath, trigger, len(net.Carriers), len(dead), time.Since(start).Seconds())
	return nil
}

// baseline returns the state to rebuild from before journal replay: the
// compacted snapshot when one exists (it is always at least as fresh as
// the -load file), else the configured source (-load snapshot or generated
// world). The returned fence is the journal sequence number already folded
// into the snapshot.
func (s *server) baseline() (*auric.Network, *auric.X2Graph, *auric.Config, []auric.CarrierID, int64, error) {
	if s.snapPath != "" {
		if _, err := os.Stat(s.snapPath); err == nil {
			net, cfg, tombs, fence, err := snapshot.LoadFull(s.snapPath)
			if err != nil {
				return nil, nil, nil, nil, 0, fmt.Errorf("compacted snapshot %s: %w", s.snapPath, err)
			}
			return net, auric.BuildX2(net), cfg, tombs, fence, nil
		}
	}
	net, x2, cfg, err := s.source()
	return net, x2, cfg, nil, 0, err
}

// restore rebuilds serving state end to end: load the baseline, re-apply
// its tombstones, then replay every journal entry past the snapshot's
// fence. It is the startup path and, in journal mode, the reload path
// (reload compacts first, so its replay set is empty). Callers other than
// startup hold reloadMu.
func (s *server) restore(entries []journal.Entry) (int64, error) {
	net, x2, cfg, tombs, fence, err := s.baseline()
	if err != nil {
		return 0, err
	}
	if s.journal != nil {
		// A compaction empties the journal while its sequence keeps
		// counting, so a journal reopened after compact-then-restart has
		// no record of how far the count got — left unseeded, the next
		// Append would reissue a number at or below the fence, and the
		// restart after that would skip the entry as already-folded
		// history. Seed from the fence; a journal with surviving entries
		// already continues past them and the seed is a no-op.
		s.journal.SeedSeq(fence + 1)
	}
	if s.engine == nil {
		s.schema = cfg.Schema()
		s.engine = auric.NewShardedEngine(s.schema, auric.EngineOptions{Local: true, Workers: s.workers, CacheEntries: s.cacheEntries})
		// The observer attaches before the first Load so the tracker's
		// baseline is the generation that actually serves.
		if s.health != nil {
			s.health.Bind(s.engine)
			s.engine.SetObserver(s.health)
		}
	}
	log.Printf("training %d market shards on %d carriers", len(net.Markets), len(net.Carriers))
	if _, err := s.engine.Load(net, x2, cfg); err != nil {
		return 0, err
	}
	if len(tombs) > 0 {
		if _, err := s.engine.Apply(auric.Delta{Tombstones: tombs}); err != nil {
			return 0, fmt.Errorf("restoring %d snapshot tombstones: %w", len(tombs), err)
		}
	}
	replayed := 0
	expected := fence + 1
	for _, e := range entries {
		if e.Seq <= fence {
			continue // already folded into the compacted snapshot
		}
		// The tail must continue exactly where the snapshot's fence ends;
		// a jump means the snapshot and journal are out of sync (e.g. a
		// deleted compacted snapshot) and replaying would skip history.
		if e.Seq != expected {
			return 0, fmt.Errorf("journal seq %d does not continue snapshot fence %d (want seq %d): snapshot and journal are out of sync", e.Seq, fence, expected)
		}
		expected++
		var wd wireDelta
		if err := json.Unmarshal(e.Data, &wd); err != nil {
			return 0, fmt.Errorf("journal seq %d: decode: %w", e.Seq, err)
		}
		d, err := s.resolveDelta(wd)
		if err != nil {
			return 0, fmt.Errorf("journal seq %d: %w", e.Seq, err)
		}
		if _, err := s.engine.Apply(d); err != nil {
			return 0, fmt.Errorf("journal seq %d: apply: %w", e.Seq, err)
		}
		replayed++
	}
	if replayed > 0 || fence > 0 {
		log.Printf("auricd: restored live state: snapshot fence seq %d, %d journal entries replayed", fence, replayed)
	}
	s.updateJournalGauges()
	return s.engine.Generation(), nil
}

// countIngest feeds auric_ingest_ops_total{kind,ok} with n operations.
func (s *server) countIngest(kind string, ok bool, n int) {
	if s.ingests != nil && n > 0 {
		s.ingests.With(kind, strconv.FormatBool(ok)).Add(uint64(n))
	}
}

// updateJournalGauges publishes the journal's replay lag and byte size,
// and mirrors the lag into the model-health tracker's staleness check.
func (s *server) updateJournalGauges() {
	if s.journal == nil {
		return
	}
	entries := s.journal.Entries()
	if s.health != nil {
		s.health.SetJournalLag(int64(entries))
	}
	if s.journalLag == nil {
		return
	}
	s.journalLag.Set(float64(entries))
	s.journalBytes.Set(float64(s.journal.Size()))
}
