package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"auric"
	"auric/internal/health"
	"auric/internal/obs"
	"auric/internal/rng"
)

// healthLiveServer builds a server through the real startup path with a
// model-health tracker attached before the first Load, the way main
// assembles it from the -health-* flags.
func healthLiveServer(t *testing.T, cfg health.Config) *server {
	t.Helper()
	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: 3, Markets: 2, ENodeBsPerMarket: 8})
	s := &server{newRNG: rng.New(1), world: w}
	s.source = func() (*auric.Network, *auric.X2Graph, *auric.Config, error) {
		return w.Net, w.X2, w.Current, nil
	}
	s.health = health.New(obs.New(), cfg)
	if _, err := s.restore(nil); err != nil {
		t.Fatal(err)
	}
	return s
}

// getModelHealth hits GET /v1/health/model and decodes the report.
func getModelHealth(t *testing.T, s *server, query string) health.Report {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleModelHealth(rec, httptest.NewRequest("GET", "/v1/health/model"+query, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/health/model%s: %d: %s", query, rec.Code, rec.Body)
	}
	var rep health.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// shardOf returns the report entry for one market.
func shardOf(t *testing.T, rep health.Report, market int) health.ShardHealth {
	t.Helper()
	for _, sh := range rep.Shards {
		if sh.Market == market {
			return sh
		}
	}
	t.Fatalf("market %d missing from report: %+v", market, rep)
	return health.ShardHealth{}
}

// marketIDs lists one market's live carrier ids.
func marketIDs(net *auric.Network, m int) []int {
	var out []int
	for i := range net.Carriers {
		if net.Carriers[i].Market == m {
			out = append(out, int(net.Carriers[i].ID))
		}
	}
	return out
}

// faithfulWire clones a carrier with its live attributes and its live
// singular configuration — churn consistent with the serving labels.
func faithfulWire(s *server, w *auric.World, id int) ingestItem {
	it := donorItem(w.Net, id)
	it.Config = map[string]float64{}
	for _, pi := range s.schema.Singular() {
		it.Config[s.schema.At(pi).Name] = w.Current.Get(auric.CarrierID(id), pi)
	}
	return it
}

// flippedWire clones a carrier with identical attributes but every
// singular parameter at the opposite end of its value grid — evidence
// that pulls the donor's voting pools toward different labels.
func flippedWire(s *server, w *auric.World, id int) ingestItem {
	it := donorItem(w.Net, id)
	it.Config = map[string]float64{}
	for _, pi := range s.schema.Singular() {
		spec := s.schema.At(pi)
		lo, hi := spec.ValueAt(0), spec.ValueAt(spec.Levels()-1)
		v := hi
		if w.Current.Get(auric.CarrierID(id), pi) == hi {
			v = lo
		}
		it.Config[spec.Name] = v
	}
	return it
}

// ingestBatch POSTs a batch of upserts and returns the assigned ids.
func ingestBatch(t *testing.T, s *server, items []ingestItem) []int {
	t.Helper()
	b, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	rec := postIngest(t, s, string(b))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch ingest: %d: %s", rec.Code, rec.Body)
	}
	var resp struct{ Results []ingestEntry }
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(resp.Results))
	for i, e := range resp.Results {
		if e.ID < 0 {
			t.Fatalf("batch item %d unassigned: %+v", i, e)
		}
		ids[i] = e.ID
	}
	return ids
}

// TestModelHealthDriftedIngestDegrades is the acceptance path: a batch of
// deliberately drifted deltas through POST /v1/carriers — attribute-
// shifted clones plus label-flipping clones — must transition market 0 to
// degraded with nonzero drift PSI and nonzero shadow disagreement, while
// the untouched market 1 stays ok.
func TestModelHealthDriftedIngestDegrades(t *testing.T) {
	var flips []health.Transition
	s := healthLiveServer(t, health.Config{
		MinDriftRows: 10, ShadowProbes: -1,
		OnTransition: func(tr health.Transition) { flips = append(flips, tr) },
	})
	w := s.world

	rep := getModelHealth(t, s, "")
	if rep.Status != "ok" || len(rep.Shards) != 2 {
		t.Fatalf("pristine server not ok: %+v", rep)
	}

	var batch []ingestItem
	for _, id := range marketIDs(w.Net, 0) {
		for k := 0; k < 4; k++ {
			batch = append(batch, flippedWire(s, w, id))
		}
		// Attribute drift: a software version the training base never saw.
		drifted := donorItem(w.Net, id)
		drifted.Carrier.SoftwareVersion = "drift-v99"
		batch = append(batch, drifted)
	}
	ingestBatch(t, s, batch)

	rep = getModelHealth(t, s, "?refresh=shadow")
	sh := shardOf(t, rep, 0)
	if sh.Status != "degraded" || rep.Status != "degraded" {
		t.Fatalf("drifted shard not degraded: %+v", sh)
	}
	if sh.Drift.MaxPSI <= 0.25 || sh.Drift.MaxPSIColumn != "softwareVersion" {
		t.Fatalf("drift PSI missed the shifted column: %+v", sh.Drift)
	}
	if sh.Shadow == nil || sh.Shadow.Disagreed == 0 || sh.Shadow.DisagreementRatio <= 0 {
		t.Fatalf("shadow refit missed the divergence: %+v", sh.Shadow)
	}
	if len(sh.Reasons) == 0 {
		t.Fatalf("degraded shard reports no reasons: %+v", sh)
	}
	if other := shardOf(t, rep, 1); other.Status != "ok" {
		t.Fatalf("untouched market degraded: %+v", other)
	}
	if len(flips) != 1 || !flips[0].Degraded || flips[0].Market != 0 {
		t.Fatalf("want one degraded transition for market 0, got %+v", flips)
	}
	if sh.OpsSinceLoad != int64(len(batch)) {
		t.Fatalf("ops since load = %d, want %d", sh.OpsSinceLoad, len(batch))
	}
}

// TestModelHealthUndriftedChurnStaysOK: label-consistent round-trip churn
// (upsert faithful clones, then tombstone them) plus real query traffic
// keeps every shard ok — drift near zero, shadow in full agreement.
func TestModelHealthUndriftedChurnStaysOK(t *testing.T) {
	s := healthLiveServer(t, health.Config{
		WindowSize: 512, MinDriftRows: 10, MinWindow: 1, ShadowProbes: -1,
	})
	w := s.world

	ids := marketIDs(w.Net, 0)
	var clones []ingestItem
	for _, id := range ids {
		clones = append(clones, faithfulWire(s, w, id))
	}
	for _, id := range ingestBatch(t, s, clones) {
		if rec := deleteCarrier(t, s, id); rec.Code != http.StatusOK {
			t.Fatalf("churn delete %d: %d: %s", id, rec.Code, rec.Body)
		}
	}
	// Serve query traffic so the windows and query-side drift rows fill.
	net, _, _, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := s.engine.Recommend(&net.Carriers[id], nil); err != nil {
			t.Fatal(err)
		}
	}

	rep := getModelHealth(t, s, "?refresh=shadow")
	if rep.Status != "ok" {
		t.Fatalf("undrifted churn degraded the server: %+v", rep)
	}
	sh := shardOf(t, rep, 0)
	if sh.Status != "ok" || len(sh.Reasons) != 0 {
		t.Fatalf("undrifted shard: %+v", sh)
	}
	if sh.Drift.MaxPSI > 0.25 {
		t.Fatalf("undrifted churn drifted: %+v", sh.Drift)
	}
	if sh.Shadow == nil || sh.Shadow.Compared == 0 || sh.Shadow.Disagreed != 0 {
		t.Fatalf("round-trip churn should leave shadow in agreement: %+v", sh.Shadow)
	}
	if sh.Window.Size == 0 || sh.Window.MeanConfidence <= 0 {
		t.Fatalf("query traffic did not fill the window: %+v", sh.Window)
	}
	if sh.OpsSinceLoad != int64(2*len(ids)) {
		t.Fatalf("ops since load = %d, want %d", sh.OpsSinceLoad, 2*len(ids))
	}
}

// TestModelHealthEndpointErrors pins the endpoint's edge contract.
func TestModelHealthEndpointErrors(t *testing.T) {
	s := healthLiveServer(t, health.Config{})
	rec := httptest.NewRecorder()
	s.handleModelHealth(rec, httptest.NewRequest("GET", "/v1/health/model?refresh=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus refresh: %d, want 400: %s", rec.Code, rec.Body)
	}
	// A server without a tracker (focused tests) answers 503, not a panic.
	bare := liveServer(t, "")
	rec = httptest.NewRecorder()
	bare.handleModelHealth(rec, httptest.NewRequest("GET", "/v1/health/model", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("trackerless health: %d, want 503: %s", rec.Code, rec.Body)
	}
}

// TestModelHealthJournalStaleness: the journal's replay lag feeds the
// tracker on every gauge refresh, and crossing -health-max-lag-ops
// degrades the report until compaction folds the backlog.
func TestModelHealthJournalStaleness(t *testing.T) {
	jpath := t.TempDir() + "/deltas.jsonl"
	s := healthLiveServer(t, health.Config{MaxLagOps: 1})
	// Attach a journal the way liveServer does, then re-route mutations
	// through it.
	s2 := liveServer(t, jpath)
	s2.health = s.health
	s2.health.Bind(s2.engine)
	s2.engine.SetObserver(s2.health)
	net0, _, _, err := s2.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, s2, donorItem(net0, 0))
	mustIngest(t, s2, donorItem(net0, 1))
	rep := getModelHealth(t, s2, "")
	if rep.JournalLagOps != 2 || rep.Status != "degraded" {
		t.Fatalf("lag 2 over threshold 1: %+v", rep)
	}
	rec := httptest.NewRecorder()
	s2.handleCompact(rec, httptest.NewRequest("POST", "/v1/compact", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("compact: %d: %s", rec.Code, rec.Body)
	}
	rep = getModelHealth(t, s2, "")
	if rep.JournalLagOps != 0 || rep.Status != "ok" {
		t.Fatalf("compaction did not clear staleness: %+v", rep)
	}
}
