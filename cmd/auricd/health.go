// Model-health surface: GET /v1/health/model reports each market shard's
// scored model quality — serving-quality window, attribute drift against
// the training base, shadow-refit divergence, and journal staleness —
// with an ok/degraded status per shard against the -health-* thresholds.
// OPERATIONS.md ("Model health") documents the schema and the triage
// runbook; internal/health implements the scoring.
package main

import (
	"log"
	"net/http"
	"strings"

	"auric/internal/health"
)

// handleModelHealth serves GET /v1/health/model. With ?refresh=shadow the
// response waits for a fresh shadow-refit divergence check of every shard
// (expensive: one scratch retrain per market); without it the last
// completed check is reported with its age.
func (s *server) handleModelHealth(rw http.ResponseWriter, r *http.Request) {
	if s.health == nil {
		writeError(rw, http.StatusServiceUnavailable, "model-health tracking is not initialized")
		return
	}
	switch v := r.URL.Query().Get("refresh"); v {
	case "", "0", "false":
	case "shadow", "1", "true":
		if err := s.health.RefreshShadow(); err != nil {
			writeError(rw, http.StatusInternalServerError, err.Error())
			return
		}
	default:
		writeError(rw, http.StatusBadRequest, "refresh takes \"shadow\" (or a boolean)")
		return
	}
	writeJSON(rw, s.health.Report())
}

// logHealthTransition is the degraded-status hook auricd installs: one
// loud log line per status flip. A future EMS rollout controller replaces
// this with a gate that pauses staged unlocks on degraded shards.
func logHealthTransition(tr health.Transition) {
	name := tr.Name
	if name == "" {
		name = "?"
	}
	if tr.Degraded {
		log.Printf("auricd: MODEL HEALTH DEGRADED: market %d (%s): %s",
			tr.Market, name, strings.Join(tr.Reasons, "; "))
		return
	}
	log.Printf("auricd: model health recovered: market %d (%s)", tr.Market, name)
}
