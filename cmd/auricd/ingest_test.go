package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"auric"
	"auric/internal/journal"
	"auric/internal/obs"
	"auric/internal/rng"
)

// liveServer builds a server through the real startup path (restore), with
// an optional journal — the configuration main assembles from -journal.
func liveServer(t *testing.T, jpath string) *server {
	t.Helper()
	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: 3, Markets: 2, ENodeBsPerMarket: 8})
	// cacheEntries is on, as in production: every ingest test then also
	// exercises the generation-keyed cache's structural invalidation.
	s := &server{newRNG: rng.New(1), world: w, cacheEntries: 256}
	s.source = func() (*auric.Network, *auric.X2Graph, *auric.Config, error) {
		return w.Net, w.X2, w.Current, nil
	}
	var entries []journal.Entry
	if jpath != "" {
		j, es, err := journal.Open(jpath)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { j.Close() })
		s.journal = j
		s.snapPath = jpath + ".snapshot"
		s.journalMax = 8 << 20
		entries = es
	}
	if _, err := s.restore(entries); err != nil {
		t.Fatal(err)
	}
	return s
}

// donorItem builds a wire upsert that clones an existing carrier's
// attributes onto its eNodeB (ID omitted: create).
func donorItem(net *auric.Network, id int) ingestItem {
	c := net.Carriers[id]
	return ingestItem{Carrier: carrierSpec{
		ENodeB: int(c.ENodeB), Face: c.Face, FrequencyMHz: c.FrequencyMHz,
		Type: c.Type.String(), Info: c.Info, Morphology: c.Morphology.String(),
		BandwidthMHz: c.BandwidthMHz, MIMOMode: c.MIMOMode, Hardware: c.Hardware,
		CellSizeMi: c.CellSizeMi, TAC: c.TAC, Market: c.Market, Vendor: c.Vendor,
		NeighborChan: c.NeighborChan, NeighborsOnENB: c.NeighborsOnENB,
		SoftwareVersion: c.SoftwareVersion, Terrain: c.Terrain.String(),
		Lat: c.Lat, Lon: c.Lon,
	}}
}

func postIngest(t *testing.T, s *server, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleIngest(rec, httptest.NewRequest("POST", "/v1/carriers", strings.NewReader(body)))
	return rec
}

func mustIngest(t *testing.T, s *server, it ingestItem) int {
	t.Helper()
	b, err := json.Marshal(it)
	if err != nil {
		t.Fatal(err)
	}
	rec := postIngest(t, s, string(b))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Generation int64
		Results    []ingestEntry
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID < 0 {
		t.Fatalf("ingest results: %+v", resp.Results)
	}
	return resp.Results[0].ID
}

func deleteCarrier(t *testing.T, s *server, id int) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleCarrierDelete(rec, httptest.NewRequest("DELETE", fmt.Sprintf("/v1/carriers/%d", id), nil))
	return rec
}

// TestIngestUpsertAndDelete exercises the journal-less ingest lifecycle:
// create a carrier, read it back, tombstone it, and observe the tombstone
// rules (no double delete, unknown id is 404).
func TestIngestUpsertAndDelete(t *testing.T) {
	s := liveServer(t, "")
	net0, _, gen0, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	before := len(net0.Carriers)

	id := mustIngest(t, s, donorItem(net0, 0))
	if id != before {
		t.Fatalf("assigned id %d, want %d (append-only id space)", id, before)
	}
	net1, _, gen1, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(net1.Carriers) != before+1 || gen1 == gen0 {
		t.Fatalf("after upsert: %d carriers (want %d), generation %d -> %d",
			len(net1.Carriers), before+1, gen0, gen1)
	}
	// The new carrier serves immediately.
	rec := httptest.NewRecorder()
	s.handleCarrier(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/carriers/%d", id), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET new carrier: %d: %s", rec.Code, rec.Body)
	}

	if rec := deleteCarrier(t, s, id); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d: %s", rec.Code, rec.Body)
	}
	if rec := deleteCarrier(t, s, id); rec.Code != http.StatusConflict {
		t.Fatalf("double delete: %d, want 409: %s", rec.Code, rec.Body)
	}
	if rec := deleteCarrier(t, s, 999999); rec.Code != http.StatusNotFound {
		t.Fatalf("delete unknown: %d, want 404", rec.Code)
	}
	// Upserting a tombstoned id is a semantic (engine) rejection: 409.
	it := donorItem(net0, 0)
	it.Carrier.ID = &id
	b, _ := json.Marshal(it)
	if rec := postIngest(t, s, string(b)); rec.Code != http.StatusConflict {
		t.Fatalf("upsert of tombstoned id: %d, want 409: %s", rec.Code, rec.Body)
	}
	// Unknown market: also an engine rejection.
	bad := donorItem(net0, 0)
	bad.Carrier.Market = 99
	b, _ = json.Marshal(bad)
	if rec := postIngest(t, s, string(b)); rec.Code != http.StatusConflict {
		t.Fatalf("unknown market: %d, want 409: %s", rec.Code, rec.Body)
	}
	// Compaction without a journal has nothing to fold.
	rec = httptest.NewRecorder()
	s.handleCompact(rec, httptest.NewRequest("POST", "/v1/compact", nil))
	if rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("compact without journal: %d, want 412", rec.Code)
	}
}

// TestIngestValidationErrors pins the per-item error contract: a batch
// with wire-level errors is rejected as a whole (atomic), every bad item
// reports its own error in its slot, and nothing applies.
func TestIngestValidationErrors(t *testing.T) {
	s := liveServer(t, "")
	net0, _, gen0, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	good := donorItem(net0, 0)
	badType := donorItem(net0, 0)
	badType.Carrier.Type = "lte-9000"
	badParam := donorItem(net0, 0)
	badParam.Config = map[string]float64{"noSuchParameter": 1}
	wrongKind := donorItem(net0, 0)
	pw := s.schema.PairWise()[0]
	wrongKind.Config = map[string]float64{s.schema.At(pw).Name: 1} // pair-wise name in the singular slot

	b, err := json.Marshal([]ingestItem{good, badType, badParam, wrongKind})
	if err != nil {
		t.Fatal(err)
	}
	rec := postIngest(t, s, string(b))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Error   string
		Results []ingestEntry
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results: %+v", resp.Results)
	}
	if resp.Results[0].Error != "" {
		t.Errorf("good item got error %q", resp.Results[0].Error)
	}
	for i, want := range map[int]string{1: "carrier type", 2: "unknown parameter", 3: "not singular"} {
		if !strings.Contains(resp.Results[i].Error, want) {
			t.Errorf("item %d error %q, want %q", i, resp.Results[i].Error, want)
		}
	}
	net1, _, gen1, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(net1.Carriers) != len(net0.Carriers) || gen1 != gen0 {
		t.Fatalf("partial apply: %d -> %d carriers, generation %d -> %d",
			len(net0.Carriers), len(net1.Carriers), gen0, gen1)
	}
}

// TestJournalReplayAfterCrash is the durability round trip: ingest, crash
// without compacting (plus a torn final write), restart from the same
// journal, and land in an identical serving state — same inventory, same
// tombstones, same recommendations.
func TestJournalReplayAfterCrash(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "deltas.jsonl")
	s1 := liveServer(t, jpath)
	net0, _, _, err := s1.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	id := mustIngest(t, s1, donorItem(net0, 0))
	if rec := deleteCarrier(t, s1, 5); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d: %s", rec.Code, rec.Body)
	}
	net1, _, _, err := s1.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	recs1, err := s1.engine.Recommend(&net1.Carriers[id], nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.journal.Close() // crash: no compaction, journal is the only record
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":99,"kind":"del`) // torn write mid-crash
	f.Close()

	s2 := liveServer(t, jpath)
	if s2.journal.Dropped() == 0 {
		t.Error("torn tail not reported as dropped")
	}
	net2, _, _, err := s2.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(net2.Carriers) != len(net1.Carriers) {
		t.Fatalf("replayed inventory %d carriers, want %d", len(net2.Carriers), len(net1.Carriers))
	}
	if dead, err := s2.engine.Tombstoned(5); err != nil || !dead {
		t.Fatalf("Tombstoned(5) = %v, %v after replay", dead, err)
	}
	recs2, err := s2.engine.Recommend(&net2.Carriers[id], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs1, recs2) {
		t.Error("recommendations diverge after journal replay")
	}
}

// TestCompactionRoundTrip: compaction folds the journal into the snapshot
// (journal empties, snapshot appears), post-compaction deltas land past
// the snapshot's sequence fence, and a restart restores the combined
// state from snapshot + journal tail.
func TestCompactionRoundTrip(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "deltas.jsonl")
	s1 := liveServer(t, jpath)
	net0, _, _, err := s1.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	id := mustIngest(t, s1, donorItem(net0, 0))
	if rec := deleteCarrier(t, s1, 5); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d: %s", rec.Code, rec.Body)
	}

	rec := httptest.NewRecorder()
	s1.handleCompact(rec, httptest.NewRequest("POST", "/v1/compact", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("compact: %d: %s", rec.Code, rec.Body)
	}
	if _, err := os.Stat(jpath + ".snapshot"); err != nil {
		t.Fatalf("compacted snapshot missing: %v", err)
	}
	if n := s1.journal.Entries(); n != 0 {
		t.Fatalf("journal holds %d entries after compaction", n)
	}

	// A post-compaction delta: its seq is past the snapshot fence.
	if rec := deleteCarrier(t, s1, 6); rec.Code != http.StatusOK {
		t.Fatalf("post-compaction delete: %d: %s", rec.Code, rec.Body)
	}
	net1, _, _, err := s1.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	recs1, err := s1.engine.Recommend(&net1.Carriers[id], nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.journal.Close()

	s2 := liveServer(t, jpath)
	net2, _, _, err := s2.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(net2.Carriers) != len(net1.Carriers) {
		t.Fatalf("restored inventory %d carriers, want %d", len(net2.Carriers), len(net1.Carriers))
	}
	for _, want := range []int{5, 6} {
		if dead, err := s2.engine.Tombstoned(auric.CarrierID(want)); err != nil || !dead {
			t.Fatalf("Tombstoned(%d) = %v, %v after restore", want, dead, err)
		}
	}
	recs2, err := s2.engine.Recommend(&net2.Carriers[id], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs1, recs2) {
		t.Error("recommendations diverge after compaction + restore")
	}
}

// TestIngestAfterCompactionRestart is the regression test for the
// sequence-seeding gap: a restart finds an empty, post-compaction journal,
// whose file carries no record of how far the sequence counted. Unless
// restore seeds it from the snapshot's fence, mutations acknowledged after
// the restart get sequence numbers at or below the fence — and the restart
// after that silently skips them as already-folded history.
func TestIngestAfterCompactionRestart(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "deltas.jsonl")
	s1 := liveServer(t, jpath)
	net0, _, _, err := s1.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	id := mustIngest(t, s1, donorItem(net0, 0))
	rec := httptest.NewRecorder()
	s1.handleCompact(rec, httptest.NewRequest("POST", "/v1/compact", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("compact: %d: %s", rec.Code, rec.Body)
	}
	fence := s1.journal.NextSeq() - 1 // the snapshot recorded this fence
	s1.journal.Close()                // clean shutdown: journal empty, snapshot current

	// Restart one: the journal is empty but must continue past the fence.
	s2 := liveServer(t, jpath)
	if next := s2.journal.NextSeq(); next != fence+1 {
		t.Fatalf("post-restart NextSeq = %d, want %d (snapshot fence %d)", next, fence+1, fence)
	}
	if rec := deleteCarrier(t, s2, 5); rec.Code != http.StatusOK {
		t.Fatalf("post-restart delete: %d: %s", rec.Code, rec.Body)
	}
	net2, _, _, err := s2.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	recs2, err := s2.engine.Recommend(&net2.Carriers[id], nil)
	if err != nil {
		t.Fatal(err)
	}
	s2.journal.Close() // crash: the delete lives only in the journal tail

	// Restart two: the acknowledged delete must replay, not be skipped.
	s3 := liveServer(t, jpath)
	if dead, err := s3.engine.Tombstoned(5); err != nil || !dead {
		t.Fatalf("Tombstoned(5) = %v, %v: post-compaction-restart mutation lost on replay", dead, err)
	}
	net3, _, _, err := s3.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(net3.Carriers) != len(net2.Carriers) {
		t.Fatalf("restored inventory %d carriers, want %d", len(net3.Carriers), len(net2.Carriers))
	}
	recs3, err := s3.engine.Recommend(&net3.Carriers[id], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs2, recs3) {
		t.Error("recommendations diverge after compaction + restart + ingest + restart")
	}
}

// TestSizeTriggeredCompaction: once the journal outgrows journalMax, the
// very ingest that crossed the line folds it into the snapshot.
func TestSizeTriggeredCompaction(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "deltas.jsonl")
	s := liveServer(t, jpath)
	s.journalMax = 1 // every append exceeds this
	net0, _, _, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, s, donorItem(net0, 0))
	if n := s.journal.Entries(); n != 0 {
		t.Fatalf("journal holds %d entries; size trigger did not compact", n)
	}
	if _, err := os.Stat(jpath + ".snapshot"); err != nil {
		t.Fatalf("compacted snapshot missing: %v", err)
	}
}

// journalGauges asserts auric_journal_lag_ops and auric_journal_bytes
// agree with the journal's actual state at a labeled point in time.
func journalGauges(t *testing.T, s *server, ctx string, wantLag float64) {
	t.Helper()
	if got := s.journalLag.Value(); got != wantLag {
		t.Fatalf("%s: auric_journal_lag_ops = %g, want %g", ctx, got, wantLag)
	}
	if got, want := s.journalBytes.Value(), float64(s.journal.Size()); got != want {
		t.Fatalf("%s: auric_journal_bytes = %g, want %g (the journal's size)", ctx, got, want)
	}
}

// TestJournalGaugeFreshness: the journal gauges must track reality through
// every path that moves the journal — ingest appends, HTTP compaction,
// crash replay on restart, and post-restart compaction. A stale
// auric_journal_lag_ops misreports the replay a restart would pay, which
// is the one number the compaction runbook pages on.
func TestJournalGaugeFreshness(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "deltas.jsonl")
	s := liveServer(t, jpath)
	newHandler(s, handlerOptions{registry: obs.New()})
	journalGauges(t, s, "fresh server", 0)

	net0, _, _, err := s.engine.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, s, donorItem(net0, 0))
	mustIngest(t, s, donorItem(net0, 1))
	journalGauges(t, s, "after two ingests", 2)
	if s.journalBytes.Value() == 0 {
		t.Fatal("auric_journal_bytes still 0 after two appended deltas")
	}

	rec := httptest.NewRecorder()
	s.handleCompact(rec, httptest.NewRequest("POST", "/v1/compact", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("compact: %d: %s", rec.Code, rec.Body)
	}
	journalGauges(t, s, "after compaction", 0)

	mustIngest(t, s, donorItem(net0, 2))
	journalGauges(t, s, "after post-compaction ingest", 1)
	s.journal.Close() // crash: one delta lives only in the journal tail

	// The restarted server replays that tail entry; its gauges must be
	// seeded from the replayed journal, not left at their zero values.
	s2 := liveServer(t, jpath)
	newHandler(s2, handlerOptions{registry: obs.New()})
	journalGauges(t, s2, "after crash replay", 1)

	rec = httptest.NewRecorder()
	s2.handleCompact(rec, httptest.NewRequest("POST", "/v1/compact", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-restart compact: %d: %s", rec.Code, rec.Body)
	}
	journalGauges(t, s2, "after post-restart compaction", 0)
}

// TestIngestInvalidatesRecommendCache pins the serving cache's structural
// invalidation at the HTTP layer: POST /v1/recommend twice (the second is
// a cache hit), then POST /v1/carriers a swarm of clones co-sited with the
// queried carrier that all vote one singular parameter a grid level away.
// The 1-hop eNodeB scope includes the clones, so the recommendation must
// flip to the swarm's value — a stale cached answer cannot pass.
func TestIngestInvalidatesRecommendCache(t *testing.T) {
	s := liveServer(t, "")
	const donor = 5
	body := fmt.Sprintf(`{"carrier": %d}`, donor)
	recommend := func() map[string]float64 {
		t.Helper()
		rec := httptest.NewRecorder()
		s.handleRecommend(rec, httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("recommend status %d: %s", rec.Code, rec.Body)
		}
		var resp struct {
			Recommendations []struct {
				Param string  `json:"param"`
				Value float64 `json:"value"`
			} `json:"recommendations"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64, len(resp.Recommendations))
		for _, r := range resp.Recommendations {
			out[r.Param] = r.Value
		}
		return out
	}

	warm := recommend()
	if again := recommend(); !reflect.DeepEqual(again, warm) {
		t.Fatalf("repeat request changed with no ingest in between:\n%v\n%v", again, warm)
	}
	st := s.engine.CacheStats()
	if !st.Enabled || st.Hits == 0 {
		t.Fatalf("repeat request did not hit the cache: %+v", st)
	}

	pi := s.schema.Singular()[0]
	p := s.schema.At(pi)
	cur, ok := warm[p.Name]
	if !ok {
		t.Fatalf("warm answer carries no %s recommendation", p.Name)
	}
	alt := p.ValueAt((p.Index(cur) + 1) % p.Levels())
	it := donorItem(s.world.Net, donor)
	it.Config = map[string]float64{p.Name: alt}
	swarm := make([]ingestItem, 64)
	for i := range swarm {
		swarm[i] = it
	}
	sb, err := json.Marshal(swarm)
	if err != nil {
		t.Fatal(err)
	}
	if rec := postIngest(t, s, string(sb)); rec.Code != http.StatusOK {
		t.Fatalf("swarm ingest status %d: %s", rec.Code, rec.Body)
	}

	got := recommend()
	if got[p.Name] != alt {
		t.Errorf("%s = %v after the swarm voted %v; the cached pre-ingest answer leaked through",
			p.Name, got[p.Name], alt)
	}
	after := s.engine.CacheStats()
	if after.Invalidations != st.Invalidations+1 {
		t.Errorf("invalidations = %d after one ingest batch, want %d", after.Invalidations, st.Invalidations+1)
	}
}
