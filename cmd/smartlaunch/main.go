// Command smartlaunch runs the Sec 5 production simulation end to end: it
// trains Auric on a synthetic network, integrates new carriers with
// vendor-generated configurations, launches them through the SmartLaunch
// pipeline against a live EMS simulator, and prints the Table 5 summary.
//
// Usage:
//
//	smartlaunch [-seed N] [-markets N] [-enbs N] [-launches N] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"

	"auric/internal/launch"
	"auric/internal/netsim"
	"auric/internal/report"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "simulation seed")
		markets  = flag.Int("markets", 4, "number of markets")
		enbs     = flag.Int("enbs", 40, "eNodeBs per market")
		launches = flag.Int("launches", 1251, "new carriers to launch")
		verbose  = flag.Bool("verbose", false, "print per-carrier records for launches with changes")
	)
	flag.Parse()

	fmt.Printf("generating network (seed=%d, %d markets x %d eNodeBs)...\n", *seed, *markets, *enbs)
	w := netsim.Generate(netsim.Options{Seed: *seed, Markets: *markets, ENodeBsPerMarket: *enbs})
	fmt.Printf("training Auric and launching %d new carriers...\n\n", *launches)

	res, records, err := launch.Simulate(w, launch.SimOptions{Seed: *seed, Launches: *launches})
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartlaunch:", err)
		os.Exit(1)
	}

	fmt.Print(report.Table([]string{"metric", "value", "paper (Table 5)"}, [][]string{
		{"new carriers launched", report.Count(res.Launched), "1251"},
		{"changes recommended by Auric", fmt.Sprintf("%d (%.1f%%)", res.WithChanges, 100*res.ChangeRate()), "143 (11.4%)"},
		{"changes implemented successfully", report.Count(res.Implemented), "114 (9%)"},
		{"fall-outs", report.Count(res.Fallouts), "29"},
		{"  premature off-band unlocks", report.Count(res.FalloutUnlock), ""},
		{"  EMS execution timeouts", report.Count(res.FalloutTimeout), ""},
		{"parameters changed", report.Count(res.ParamsChanged), "1102"},
	}))

	if *verbose {
		fmt.Println()
		rows := make([][]string, 0, res.WithChanges)
		for _, rec := range records {
			if rec.Planned == 0 {
				continue
			}
			rows = append(rows, []string{
				fmt.Sprint(rec.Carrier),
				fmt.Sprint(rec.Planned),
				fmt.Sprint(rec.Pushed),
				rec.Outcome.String(),
				fmt.Sprint(rec.PostcheckOK),
			})
		}
		fmt.Print(report.Table([]string{"carrier", "planned", "pushed", "outcome", "postcheck"}, rows))
	}
}
