// Command auricload is the standing performance harness of the serving
// path: it drives sustained recommendation load against a sharded
// multi-market engine and reports throughput and latency quantiles as a
// JSON document — the artifact EXPERIMENTS.md quotes and `make check`
// gates on.
//
// By default the load runs in process: a netsim snapshot is generated,
// a ShardedEngine trains one shard per market, and worker goroutines
// issue single or batched recommendation requests against it for the
// configured duration. This measures the full serving data path (shard
// routing, generation pinning, engine fan-out, per-item assembly) without
// HTTP noise, so the numbers are stable enough to gate a build on. With
// -target the same workers instead POST /v1/recommend to a live auricd,
// measuring the end-to-end HTTP path.
//
// -reloads N swaps the snapshot N times while the load runs, proving the
// zero-downtime property under fire: with -max-failures 0 (the default)
// any request failing during a swap fails the run.
//
// -churn R races live ingest against the recommend traffic (in-process
// mode): a churner applies R carrier mutations per second — each one an
// upsert of a new carrier plus a tombstone of the previous one, the
// steady-state shape of a network tracking adds and decommissions — while
// the workers keep recommending. The report gains ingest op counts and a
// separate ingest latency distribution, so the cost of incremental fit
// under serving load is measured, not assumed.
//
// Latency is recorded into an internal/obs histogram and the report's
// p50/p90/p99 come from Histogram.Quantile — the same estimator the
// /metrics consumers apply, so harness numbers and production dashboards
// read on one scale.
//
//	auricload -markets 4 -enbs 12 -duration 5s -batch 16 -reloads 2
//	auricload -target http://127.0.0.1:8400 -duration 10s
//
// The report goes to stdout (or -report FILE). Exit status is non-zero
// when -min-rps or -max-failures is violated, which is what makes the
// harness a gate rather than a dashboard.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"auric"
	"auric/internal/obs"
)

type options struct {
	seed    uint64
	markets int
	enbs    int

	duration time.Duration
	workers  int
	batch    int
	pairwise bool
	reloads  int
	churn    float64

	// uniqueCarriers restricts the traffic to this many distinct requests,
	// zipf-distributed so a few carriers repeat heavily — the repeat-heavy
	// shape the generation-keyed serving cache exists for. 0 keeps the
	// historical uniform sweep over every carrier.
	uniqueCarriers int
	cacheEntries   int

	engineWorkers int
	target        string

	minRPS         float64
	minCPS         float64
	maxFailures    int64
	maxUnsupported float64
}

// report is the JSON document auricload emits; field names are the
// contract EXPERIMENTS.md and scripts/load_smoke.sh parse.
type report struct {
	Mode            string  `json:"mode"` // "inprocess" or "http"
	Seed            uint64  `json:"seed,omitempty"`
	Markets         int     `json:"markets,omitempty"`
	Carriers        int     `json:"carriers,omitempty"`
	Workers         int     `json:"workers"`
	Batch           int     `json:"batch"`
	DurationSeconds float64 `json:"durationSeconds"`
	Requests        int64   `json:"requests"`
	CarriersServed  int64   `json:"carriersServed"`
	Failures        int64   `json:"failures"`
	Reloads         int     `json:"reloads"`
	RPS             float64 `json:"rps"` // requests per second
	CarriersPerSec  float64 `json:"carriersPerSec"`
	Latency         latency `json:"latencySeconds"`
	// Prediction-quality fields (in-process mode only; the HTTP mode
	// discards response bodies and cannot score them): how many per-
	// parameter predictions the served requests carried, what share was
	// unsupported (no evidence pool, engine fell back to the current
	// value), and the mean prediction confidence. Pointers so the HTTP
	// mode omits them instead of reporting a misleading zero.
	Predictions      int64    `json:"predictions,omitempty"`
	UnsupportedRatio *float64 `json:"unsupportedRatio,omitempty"`
	MeanConfidence   *float64 `json:"meanConfidence,omitempty"`
	// Churn-mode fields (-churn): ingest deltas applied while the load
	// ran, how many failed, and the ingest latency distribution.
	ChurnOps      int64    `json:"churnOps,omitempty"`
	ChurnFailures int64    `json:"churnFailures,omitempty"`
	ChurnLatency  *latency `json:"churnLatencySeconds,omitempty"`
	// Serving-cache fields: how much of the run's traffic the generation-
	// keyed cache absorbed. In-process they read the engine's CacheStats;
	// in HTTP mode they come from the target's auric_cache_* metrics delta
	// across the run, and are omitted when the target does not expose them
	// (or the cache is disabled).
	UniqueCarriers int      `json:"uniqueCarriers,omitempty"`
	CacheHits      int64    `json:"cacheHits,omitempty"`
	CacheMisses    int64    `json:"cacheMisses,omitempty"`
	HitRatio       *float64 `json:"hitRatio,omitempty"`
}

// cacheReport fills the report's serving-cache fields from a hit/miss
// tally covering the run.
func (rep *report) cacheReport(hits, misses int64) {
	rep.CacheHits, rep.CacheMisses = hits, misses
	if total := hits + misses; total > 0 {
		hr := float64(hits) / float64(total)
		rep.HitRatio = &hr
	}
}

// predStats accumulates one worker's prediction-quality tallies; each
// worker owns one padded slot so the hot loop never shares a cache line.
type predStats struct {
	preds       int64
	unsupported int64
	confSum     float64
	_           [5]int64
}

func (ps *predStats) note(recs []auric.Recommendation) {
	for i := range recs {
		ps.preds++
		if !recs[i].Supported {
			ps.unsupported++
		}
		ps.confSum += recs[i].Confidence
	}
}

type latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

func main() {
	var o options
	flag.Uint64Var(&o.seed, "seed", 1, "netsim snapshot seed (in-process mode)")
	flag.IntVar(&o.markets, "markets", 4, "netsim markets (in-process mode)")
	flag.IntVar(&o.enbs, "enbs", 10, "eNodeBs per market (in-process mode)")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "load duration")
	flag.IntVar(&o.workers, "workers", 0, "concurrent load workers (0 = GOMAXPROCS)")
	flag.IntVar(&o.batch, "batch", 1, "carriers per request (>1 uses the batch path)")
	flag.BoolVar(&o.pairwise, "pairwise", false, "request pair-wise recommendations too")
	flag.IntVar(&o.reloads, "reloads", 0, "snapshot reloads performed while the load runs")
	flag.Float64Var(&o.churn, "churn", 0, "live-ingest deltas per second racing the load (in-process mode; 0 disables)")
	flag.IntVar(&o.uniqueCarriers, "unique-carriers", 0, "restrict traffic to this many distinct carriers, zipf-distributed so a few repeat heavily (0 = uniform over every carrier)")
	flag.IntVar(&o.cacheEntries, "cache-entries", 4096, "generation-keyed serving cache size of the in-process engine (0 disables)")
	flag.IntVar(&o.engineWorkers, "engine-workers", 1, "per-shard engine worker pool (keep 1: the load workers provide the parallelism)")
	flag.StringVar(&o.target, "target", "", "drive a live auricd at this base URL instead of in-process")
	flag.Float64Var(&o.minRPS, "min-rps", 0, "fail the run below this request rate (0 disables)")
	flag.Float64Var(&o.minCPS, "min-cps", 0, "fail the run below this many carriers served per second (0 disables; the batch-mode throughput gate)")
	flag.Int64Var(&o.maxFailures, "max-failures", 0, "fail the run above this many failed requests (-1 disables)")
	flag.Float64Var(&o.maxUnsupported, "max-unsupported", -1, "fail the run when the unsupported-prediction share exceeds this ratio (in-process mode; negative disables)")
	reportPath := flag.String("report", "", "write the JSON report here instead of stdout")
	flag.Parse()

	rep, err := run(&o)
	if err != nil {
		log.Fatalf("auricload: %v", err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("auricload: encoding report: %v", err)
	}
	out = append(out, '\n')
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, out, 0o644); err != nil {
			log.Fatalf("auricload: %v", err)
		}
	} else {
		os.Stdout.Write(out)
	}
	if o.minRPS > 0 && rep.RPS < o.minRPS {
		log.Fatalf("auricload: %.0f req/s is below the -min-rps gate of %.0f", rep.RPS, o.minRPS)
	}
	if o.minCPS > 0 && rep.CarriersPerSec < o.minCPS {
		log.Fatalf("auricload: %.0f carriers/s is below the -min-cps gate of %.0f", rep.CarriersPerSec, o.minCPS)
	}
	if o.maxFailures >= 0 && rep.Failures+rep.ChurnFailures > o.maxFailures {
		log.Fatalf("auricload: %d failed requests (%d of them ingest) exceed the -max-failures gate of %d",
			rep.Failures+rep.ChurnFailures, rep.ChurnFailures, o.maxFailures)
	}
	if o.maxUnsupported >= 0 {
		if rep.UnsupportedRatio == nil {
			log.Fatalf("auricload: the run produced no scored predictions to gate -max-unsupported on")
		}
		if *rep.UnsupportedRatio > o.maxUnsupported {
			log.Fatalf("auricload: unsupported-prediction ratio %.4f exceeds the -max-unsupported gate of %.4f",
				*rep.UnsupportedRatio, o.maxUnsupported)
		}
	}
}

// carrierPicker chooses which carrier each request asks about. The
// uniform mode sweeps every carrier in order (the historical shape); the
// -unique-carriers mode draws from a zipf distribution over a fixed
// subset, so rank 0 repeats far more often than rank k — the repeat-heavy
// traffic a launch queue produces (the same few about-to-launch carriers
// polled again and again) and the shape the serving cache absorbs.
type carrierPicker struct {
	zipf   *rand.Zipf
	unique int
	total  int
}

func newPicker(o *options, worker, total int) *carrierPicker {
	p := &carrierPicker{total: total}
	if o.uniqueCarriers > 0 {
		p.unique = o.uniqueCarriers
		if p.unique > total {
			p.unique = total
		}
		if p.unique > 1 {
			r := rand.New(rand.NewSource(int64(o.seed)*1024 + int64(worker)))
			p.zipf = rand.NewZipf(r, 1.2, 1, uint64(p.unique-1))
		}
	}
	return p
}

// next returns the carrier index for the request with sequential index seq.
func (p *carrierPicker) next(seq int) int {
	if p.unique == 0 {
		return seq % p.total
	}
	if p.zipf == nil { // -unique-carriers 1
		return 0
	}
	// Spread the zipf ranks across the id space (and so across markets)
	// instead of concentrating them in the low-id market.
	return int(p.zipf.Uint64()) * p.total / p.unique
}

func run(o *options) (*report, error) {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	if o.batch < 1 {
		o.batch = 1
	}
	if o.uniqueCarriers < 0 {
		o.uniqueCarriers = 0
	}
	if o.duration <= 0 {
		return nil, fmt.Errorf("duration %v is not positive", o.duration)
	}
	if o.churn > 0 && o.target != "" {
		return nil, fmt.Errorf("-churn drives the in-process engine and cannot combine with -target")
	}
	if o.maxUnsupported >= 0 && o.target != "" {
		// The HTTP workers discard response bodies, so there is nothing
		// to score the gate against.
		return nil, fmt.Errorf("-max-unsupported scores in-process predictions and cannot combine with -target")
	}
	if o.churn > 0 && o.reloads > 0 {
		// A reload drops live-ingested carriers, so the churner's next
		// tombstone would fail spuriously; keep the two modes apart.
		return nil, fmt.Errorf("-churn and -reloads cannot combine: a reload discards ingested carriers mid-run")
	}
	if o.target != "" {
		return runHTTP(o)
	}
	return runInProcess(o)
}

// runInProcess measures the engine serving path: shard routing,
// generation pinning and recommendation fan-out, with optional snapshot
// swaps racing the load.
func runInProcess(o *options) (*report, error) {
	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: o.seed, Markets: o.markets, ENodeBsPerMarket: o.enbs})
	engine := auric.NewShardedEngine(w.Schema, auric.EngineOptions{Local: true, Workers: o.engineWorkers, CacheEntries: o.cacheEntries})
	if _, err := engine.Load(w.Net, w.X2, w.Current); err != nil {
		return nil, err
	}
	hist := obs.New().Histogram("auricload_request_seconds",
		"Latency per recommendation request issued by auricload.", obs.DefBuckets)

	var requests, carriers, failures atomic.Int64
	stats := make([]predStats, o.workers)
	deadline := time.Now().Add(o.duration)
	start := time.Now()

	var wg sync.WaitGroup
	for g := 0; g < o.workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			st := &stats[g]
			pick := newPicker(o, g, len(w.Net.Carriers))
			for i := g; time.Now().Before(deadline); i += o.batch {
				t0 := time.Now()
				if o.batch == 1 {
					c := &w.Net.Carriers[pick.next(i)]
					var neighbors []auric.CarrierID
					if o.pairwise {
						neighbors = w.X2.CarrierNeighbors(c.ID)
					}
					recs, err := engine.Recommend(c, neighbors)
					if err != nil || len(recs) == 0 {
						failures.Add(1)
					} else {
						st.note(recs)
					}
					carriers.Add(1)
				} else {
					items := make([]auric.BatchItem, o.batch)
					for j := range items {
						c := &w.Net.Carriers[pick.next(i+j)]
						items[j] = auric.BatchItem{Carrier: c}
						if o.pairwise {
							items[j].Neighbors = w.X2.CarrierNeighbors(c.ID)
						}
					}
					res, err := engine.RecommendBatch(ctx, items)
					if err != nil {
						failures.Add(int64(o.batch))
					} else {
						for _, r := range res {
							if r.Err != nil || len(r.Recommendations) == 0 {
								failures.Add(1)
							} else {
								st.note(r.Recommendations)
							}
						}
					}
					carriers.Add(int64(o.batch))
				}
				hist.Observe(time.Since(t0).Seconds())
				requests.Add(1)
			}
		}(g)
	}

	// The reloader swaps the serving snapshot at even intervals across
	// the run; with -max-failures 0 any request it breaks fails the gate.
	reloadErr := make(chan error, 1)
	go func() {
		defer close(reloadErr)
		if o.reloads <= 0 {
			return
		}
		interval := o.duration / time.Duration(o.reloads+1)
		for i := 0; i < o.reloads; i++ {
			time.Sleep(interval)
			if _, err := engine.Load(w.Net, w.X2, w.Current); err != nil {
				reloadErr <- fmt.Errorf("reload %d: %w", i+1, err)
				return
			}
		}
	}()

	// The churner races live ingest against the recommend load: each delta
	// creates a carrier and tombstones the previous one, so the inventory
	// stays bounded while every op exercises the incremental-fit patch path
	// and a generation swap under fire.
	var churnOps, churnFailures atomic.Int64
	churnHist := obs.New().Histogram("auricload_ingest_seconds",
		"Latency per ingest delta applied by the churner.", obs.DefBuckets)
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		if o.churn <= 0 {
			return
		}
		interval := time.Duration(float64(time.Second) / o.churn)
		donor := w.Net.Carriers[0]
		prev := auric.CarrierID(-1)
		for time.Now().Before(deadline) {
			c := donor
			c.ID = -1
			d := auric.Delta{Upserts: []auric.Upsert{{Carrier: c}}}
			if prev >= 0 {
				d.Tombstones = []auric.CarrierID{prev}
			}
			t0 := time.Now()
			res, err := engine.Apply(d)
			took := time.Since(t0)
			churnHist.Observe(took.Seconds())
			churnOps.Add(1)
			if err != nil {
				churnFailures.Add(1)
			} else {
				prev = res.Assigned[0]
			}
			if rest := interval - took; rest > 0 {
				time.Sleep(rest)
			}
		}
	}()

	wg.Wait()
	<-churnDone
	if err := <-reloadErr; err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	rep := &report{
		Mode: "inprocess", Seed: o.seed, Markets: o.markets,
		Carriers: len(w.Net.Carriers), Workers: o.workers, Batch: o.batch,
		DurationSeconds: elapsed.Seconds(),
		Requests:        requests.Load(),
		CarriersServed:  carriers.Load(),
		Failures:        failures.Load(),
		Reloads:         o.reloads,
	}
	fill(rep, hist, elapsed)
	var preds, unsupported int64
	var confSum float64
	for i := range stats {
		preds += stats[i].preds
		unsupported += stats[i].unsupported
		confSum += stats[i].confSum
	}
	rep.Predictions = preds
	if preds > 0 {
		ur := float64(unsupported) / float64(preds)
		mc := confSum / float64(preds)
		rep.UnsupportedRatio = &ur
		rep.MeanConfidence = &mc
	}
	if o.churn > 0 {
		rep.ChurnOps = churnOps.Load()
		rep.ChurnFailures = churnFailures.Load()
		cl := &latency{
			P50: churnHist.Quantile(0.5),
			P90: churnHist.Quantile(0.9),
			P99: churnHist.Quantile(0.99),
		}
		if n := churnHist.Count(); n > 0 {
			cl.Mean = churnHist.Sum() / float64(n)
		}
		rep.ChurnLatency = cl
	}
	rep.UniqueCarriers = o.uniqueCarriers
	if cs := engine.CacheStats(); cs.Enabled {
		rep.cacheReport(int64(cs.Hits), int64(cs.Misses))
	}
	return rep, nil
}

// runHTTP drives a live auricd's POST /v1/recommend, measuring the
// end-to-end HTTP path. Failures are transport errors and non-200s.
func runHTTP(o *options) (*report, error) {
	base := strings.TrimSuffix(o.target, "/")
	// Probe the target and learn the carrier count to spread load over.
	resp, err := http.Get(base + "/v1/network")
	if err != nil {
		return nil, err
	}
	var net struct {
		Carriers int `json:"carriers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&net)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("probing %s: %w", base, err)
	}
	if net.Carriers == 0 {
		return nil, fmt.Errorf("target %s reports no carriers", base)
	}
	hist := obs.New().Histogram("auricload_request_seconds",
		"Latency per recommendation request issued by auricload.", obs.DefBuckets)

	client := &http.Client{Timeout: 2 * time.Minute}
	// Cache counters before the load: the report's hit ratio is the delta
	// across the run, so a long-lived target's history does not dilute it.
	hits0, misses0, scraped := scrapeCacheCounters(client, base)
	var requests, carriers, failures atomic.Int64
	deadline := time.Now().Add(o.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < o.workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pick := newPicker(o, g, net.Carriers)
			for i := g; time.Now().Before(deadline); i += o.batch {
				body := requestBody(o, pick, i)
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
				} else {
					if resp.StatusCode != http.StatusOK {
						failures.Add(1)
					}
					resp.Body.Close()
				}
				hist.Observe(time.Since(t0).Seconds())
				requests.Add(1)
				carriers.Add(int64(o.batch))
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Mode: "http", Workers: o.workers, Batch: o.batch,
		Carriers:        net.Carriers,
		DurationSeconds: elapsed.Seconds(),
		Requests:        requests.Load(),
		CarriersServed:  carriers.Load(),
		Failures:        failures.Load(),
	}
	fill(rep, hist, elapsed)
	rep.UniqueCarriers = o.uniqueCarriers
	if scraped {
		if hits1, misses1, ok := scrapeCacheCounters(client, base); ok {
			rep.cacheReport(hits1-hits0, misses1-misses0)
		}
	}
	return rep, nil
}

// scrapeCacheCounters reads the target's auric_cache_hits_total and
// auric_cache_misses_total from /metrics. ok is false when the endpoint
// or the counters are absent (an auricd without the cache, or any other
// server): the report then simply omits the cache fields.
func scrapeCacheCounters(client *http.Client, base string) (hits, misses int64, ok bool) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, false
	}
	var haveHits, haveMisses bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			continue
		}
		switch f[0] {
		case "auric_cache_hits_total":
			hits, haveHits = int64(v), true
		case "auric_cache_misses_total":
			misses, haveMisses = int64(v), true
		}
	}
	return hits, misses, haveHits && haveMisses
}

// requestBody builds the i-th request: a single object for batch 1, an
// array of batch carrier objects otherwise.
func requestBody(o *options, pick *carrierPicker, i int) []byte {
	one := func(id int) string {
		if o.pairwise {
			return fmt.Sprintf(`{"carrier": %d, "pairwise": true}`, id)
		}
		return fmt.Sprintf(`{"carrier": %d}`, id)
	}
	if o.batch == 1 {
		return []byte(one(pick.next(i)))
	}
	parts := make([]string, o.batch)
	for j := range parts {
		parts[j] = one(pick.next(i + j))
	}
	return []byte("[" + strings.Join(parts, ",") + "]")
}

func fill(rep *report, hist *obs.Histogram, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs > 0 {
		rep.RPS = float64(rep.Requests) / secs
		rep.CarriersPerSec = float64(rep.CarriersServed) / secs
	}
	rep.Latency = latency{
		P50: hist.Quantile(0.5),
		P90: hist.Quantile(0.9),
		P99: hist.Quantile(0.99),
	}
	if n := hist.Count(); n > 0 {
		rep.Latency.Mean = hist.Sum() / float64(n)
	}
}
