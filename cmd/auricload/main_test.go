package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRunInProcess drives a short in-process load with a mid-run snapshot
// reload: the report must show traffic, zero failures (the zero-downtime
// property under fire), and coherent latency quantiles.
func TestRunInProcess(t *testing.T) {
	o := &options{
		seed: 7, markets: 2, enbs: 4,
		duration: 400 * time.Millisecond,
		workers:  2, batch: 4, reloads: 1,
		engineWorkers: 1, maxFailures: 0,
	}
	rep, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "inprocess" {
		t.Errorf("mode %q", rep.Mode)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if rep.Failures != 0 {
		t.Fatalf("%d of %d requests failed during reload, want 0", rep.Failures, rep.Requests)
	}
	if rep.CarriersServed != rep.Requests*int64(o.batch) {
		t.Errorf("carriersServed %d != requests %d x batch %d", rep.CarriersServed, rep.Requests, o.batch)
	}
	if rep.RPS <= 0 || rep.CarriersPerSec < rep.RPS {
		t.Errorf("rates rps=%g carriers/s=%g are incoherent", rep.RPS, rep.CarriersPerSec)
	}
	l := rep.Latency
	if !(l.P50 > 0 && l.P50 <= l.P90 && l.P90 <= l.P99) {
		t.Errorf("quantiles p50=%g p90=%g p99=%g are not monotone", l.P50, l.P90, l.P99)
	}
	if l.Mean <= 0 {
		t.Errorf("mean latency %g", l.Mean)
	}
	if rep.Predictions == 0 {
		t.Fatal("no predictions scored")
	}
	if rep.UnsupportedRatio == nil || *rep.UnsupportedRatio < 0 || *rep.UnsupportedRatio > 1 {
		t.Errorf("unsupportedRatio %v out of [0,1]", rep.UnsupportedRatio)
	}
	if rep.MeanConfidence == nil || *rep.MeanConfidence <= 0 || *rep.MeanConfidence > 1 {
		t.Errorf("meanConfidence %v out of (0,1]", rep.MeanConfidence)
	}

	// The report round-trips as the JSON contract load_smoke.sh parses.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || back.Latency.P99 != rep.Latency.P99 {
		t.Errorf("report did not round-trip: %+v vs %+v", back, rep)
	}
}

// TestRunChurn races ingest against recommend traffic: the churner must
// apply deltas without a single recommend or ingest failure, and report a
// separate ingest latency distribution.
func TestRunChurn(t *testing.T) {
	o := &options{
		seed: 7, markets: 2, enbs: 4,
		duration: 400 * time.Millisecond,
		workers:  2, batch: 4, churn: 50,
		engineWorkers: 1, maxFailures: 0,
	}
	rep, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.ChurnOps == 0 {
		t.Fatalf("requests %d, churn ops %d: both sides must see traffic", rep.Requests, rep.ChurnOps)
	}
	if rep.Failures != 0 || rep.ChurnFailures != 0 {
		t.Fatalf("failures %d, churn failures %d under churn, want 0", rep.Failures, rep.ChurnFailures)
	}
	if rep.ChurnLatency == nil || rep.ChurnLatency.P50 <= 0 {
		t.Fatalf("churn latency missing: %+v", rep.ChurnLatency)
	}

	// The guards: churn cannot combine with -target or -reloads, and the
	// unsupported gate only scores in-process predictions.
	if _, err := run(&options{duration: time.Second, churn: 1, target: "http://x"}); err == nil {
		t.Error("churn + target accepted")
	}
	if _, err := run(&options{duration: time.Second, churn: 1, reloads: 1}); err == nil {
		t.Error("churn + reloads accepted")
	}
	if _, err := run(&options{duration: time.Second, maxUnsupported: 0.5, target: "http://x"}); err == nil {
		t.Error("max-unsupported + target accepted")
	}
}

// TestRunHTTP points the harness at a stub auricd and checks both the
// success accounting and that non-200 responses count as failures.
func TestRunHTTP(t *testing.T) {
	var status = http.StatusOK
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/network":
			json.NewEncoder(rw).Encode(map[string]int{"carriers": 10})
		case "/v1/recommend":
			rw.WriteHeader(status)
			rw.Write([]byte(`{}`))
		default:
			http.NotFound(rw, r)
		}
	}))
	defer srv.Close()

	o := &options{target: srv.URL, duration: 200 * time.Millisecond, workers: 2, batch: 2, maxUnsupported: -1}
	rep, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "http" || rep.Requests == 0 || rep.Failures != 0 {
		t.Fatalf("report %+v, want http traffic with zero failures", rep)
	}

	status = http.StatusInternalServerError
	rep, err = run(&options{target: srv.URL, duration: 100 * time.Millisecond, workers: 1, batch: 1, maxUnsupported: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != rep.Requests {
		t.Errorf("5xx run: failures %d != requests %d", rep.Failures, rep.Requests)
	}
}

// TestRequestBody pins both request shapes to valid auricd request JSON.
func TestRequestBody(t *testing.T) {
	uniform := newPicker(&options{}, 0, 10)
	single := requestBody(&options{batch: 1}, uniform, 3)
	var obj map[string]any
	if err := json.Unmarshal(single, &obj); err != nil {
		t.Fatalf("single body %s: %v", single, err)
	}
	if obj["carrier"].(float64) != 3 {
		t.Errorf("single body %s", single)
	}
	batch := requestBody(&options{batch: 3, pairwise: true}, uniform, 8)
	var arr []map[string]any
	if err := json.Unmarshal(batch, &arr); err != nil {
		t.Fatalf("batch body %s: %v", batch, err)
	}
	if len(arr) != 3 || arr[0]["carrier"].(float64) != 8 || arr[1]["carrier"].(float64) != 9 ||
		arr[2]["carrier"].(float64) != 0 || arr[2]["pairwise"] != true {
		t.Errorf("batch body %s", batch)
	}
}

// TestCarrierPicker pins the traffic shapes: uniform sweeps the whole id
// space, -unique-carriers bounds the distinct ids drawn (Zipf-skewed,
// spread across the id space rather than packed into the low-id market),
// and -unique-carriers 1 hammers a single carrier.
func TestCarrierPicker(t *testing.T) {
	uniform := newPicker(&options{}, 0, 7)
	for i := 0; i < 14; i++ {
		if got := uniform.next(i); got != i%7 {
			t.Fatalf("uniform next(%d) = %d, want %d", i, got, i%7)
		}
	}

	o := &options{seed: 3, uniqueCarriers: 4}
	skewed := newPicker(o, 1, 100)
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		id := skewed.next(i)
		if id < 0 || id >= 100 {
			t.Fatalf("next out of range: %d", id)
		}
		seen[id]++
	}
	if len(seen) > o.uniqueCarriers {
		t.Errorf("drew %d distinct carriers, want <= %d", len(seen), o.uniqueCarriers)
	}
	// Zipf rank 0 maps to id 0 and must dominate the draw.
	if seen[0] < 1000 {
		t.Errorf("hot carrier drew %d of 2000, want a Zipf-heavy majority", seen[0])
	}

	one := newPicker(&options{uniqueCarriers: 1}, 0, 50)
	for i := 0; i < 5; i++ {
		if got := one.next(i); got != 0 {
			t.Fatalf("unique=1 next(%d) = %d, want 0", i, got)
		}
	}

	// unique-carriers above the inventory clamps to the inventory.
	if p := newPicker(&options{seed: 1, uniqueCarriers: 99}, 0, 8); p.unique != 8 {
		t.Errorf("unique clamped to %d, want 8", p.unique)
	}
}

func TestRunRejectsBadDuration(t *testing.T) {
	if _, err := run(&options{duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
