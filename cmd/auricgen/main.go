// Command auricgen generates a synthetic LTE network snapshot and prints
// its inventory, or exports the configuration as CSV for external
// analysis.
//
// Usage:
//
//	auricgen [-seed N] [-markets N] [-enbs N] [-csv params.csv] [-summary]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"auric"
	"auric/internal/report"
	"auric/internal/snapshot"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "generation seed")
		markets = flag.Int("markets", 28, "number of markets")
		enbs    = flag.Int("enbs", 60, "eNodeBs per market")
		csvPath = flag.String("csv", "", "write singular parameter values as CSV to this path")
		outPath = flag.String("save", "", "write a network+configuration snapshot (gzipped JSON) to this path")
		summary = flag.Bool("summary", true, "print the network summary")
	)
	flag.Parse()

	w := auric.SimulateNetwork(auric.NetworkOptions{
		Seed:             *seed,
		Markets:          *markets,
		ENodeBsPerMarket: *enbs,
	})

	if *summary {
		printSummary(w)
	}
	if *csvPath != "" {
		if err := writeCSV(w, *csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "auricgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *outPath != "" {
		if err := snapshot.Save(*outPath, w.Net, w.Current); err != nil {
			fmt.Fprintln(os.Stderr, "auricgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func printSummary(w *auric.World) {
	edges := 0
	for ci := range w.Net.Carriers {
		edges += len(w.X2.CarrierNeighbors(auric.CarrierID(ci)))
	}
	singular := len(w.Schema.Singular())
	pairwise := len(w.Schema.PairWise())
	fmt.Printf("markets: %d\neNodeBs: %s\ncarriers: %s\nX2 relations: %s\n",
		len(w.Net.Markets), report.Count(len(w.Net.ENodeBs)),
		report.Count(len(w.Net.Carriers)), report.Count(edges))
	fmt.Printf("parameters: %d (%d singular, %d pair-wise)\n",
		w.Schema.Len(), singular, pairwise)
	fmt.Printf("configuration values: %s\n",
		report.Count(len(w.Net.Carriers)*singular+edges*pairwise))

	rows := make([][]string, 0, len(w.Net.Markets))
	for _, m := range w.Net.Markets {
		carriers := len(w.Net.CarriersInMarket(m.ID))
		rows = append(rows, []string{
			m.Name, m.Timezone,
			strconv.Itoa(w.Net.ENodeBsInMarket(m.ID)),
			strconv.Itoa(carriers),
		})
	}
	fmt.Println()
	fmt.Print(report.Table([]string{"market", "timezone", "eNodeBs", "carriers"}, rows))
}

func writeCSV(w *auric.World, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	header := append([]string{"carrier"}, attributeHeader()...)
	for _, pi := range w.Schema.Singular() {
		header = append(header, w.Schema.At(pi).Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for ci := range w.Net.Carriers {
		c := &w.Net.Carriers[ci]
		row := append([]string{strconv.Itoa(ci)}, c.AttributeVector()...)
		for _, pi := range w.Schema.Singular() {
			row = append(row, w.Schema.At(pi).Format(w.Current.Get(c.ID, pi)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func attributeHeader() []string {
	return []string{
		"carrierFrequency", "carrierType", "carrierInfo", "morphology",
		"channelBandwidth", "downlinkMimoMode", "hardwareConfiguration",
		"expectedCellSize", "trackingAreaCode", "market", "vendor",
		"neighborChannel", "neighborsOnSameENodeB", "softwareVersion",
	}
}
