package auric

import (
	"auric/internal/controller"
	"auric/internal/ems"
	"auric/internal/kpi"
	"auric/internal/launch"
	"auric/internal/netsim"
	"auric/internal/rng"
)

// Production-side pipeline (see internal/ems, internal/controller and
// internal/launch; Sec 5 of the paper).
type (
	// EMSServer simulates a vendor element management system over TCP:
	// managed-object reads/writes, carrier locking, a bounded execution
	// queue.
	EMSServer = ems.Server
	// EMSConfig tunes the EMS simulator.
	EMSConfig = ems.Config
	// EMSClient is a connection to an EMS server.
	EMSClient = ems.Client
	// EMSAssignment is one parameter assignment of a bulk write.
	EMSAssignment = ems.Assignment
	// Controller diffs recommendations against vendor configuration and
	// pushes mismatches through the EMS.
	Controller = controller.Controller
	// ControllerOptions configure a Controller (support requirement,
	// engineer validation gate).
	ControllerOptions = controller.Options
	// Change is one planned configuration change.
	Change = controller.Change
	// Outcome classifies a push: Applied, SkippedUnlocked or TimedOut.
	Outcome = controller.Outcome
	// LaunchWorkflow is the SmartLaunch pipeline for one carrier.
	LaunchWorkflow = launch.Workflow
	// LaunchRecord is the audit trail of one launch.
	LaunchRecord = launch.Record
	// LaunchSimOptions configure the Table 5 production simulation.
	LaunchSimOptions = launch.SimOptions
	// LaunchSimResult aggregates a simulation run.
	LaunchSimResult = launch.SimResult
	// Rand is the deterministic random stream used across the library.
	Rand = rng.RNG
)

// Push outcomes.
const (
	Applied         = controller.Applied
	SkippedUnlocked = controller.SkippedUnlocked
	TimedOut        = controller.TimedOut
)

// NewEMSServer creates an EMS simulator over a configuration store.
func NewEMSServer(schema *Schema, store *Config, cfg EMSConfig) *EMSServer {
	return ems.NewServer(schema, store, cfg)
}

// DialEMS connects to an EMS server.
func DialEMS(addr string) (*EMSClient, error) { return ems.Dial(addr) }

// NewController creates a configuration controller over an EMS session.
func NewController(schema *Schema, client *EMSClient, opts ControllerOptions) *Controller {
	return controller.New(schema, client, opts)
}

// SimulateLaunches reproduces the paper's two-month production window
// (Table 5) against the given world.
func SimulateLaunches(w *World, opts LaunchSimOptions) (LaunchSimResult, []LaunchRecord, error) {
	return launch.Simulate(w, opts)
}

// NewRand returns a deterministic random stream (used, e.g., by
// World.NewCarrierAt).
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Service-performance feedback (the Sec 6 extension; see internal/kpi).
type (
	// KPISimulator derives per-carrier KPIs from configuration deviation.
	KPISimulator = kpi.Simulator
	// KPIReport is one carrier's KPI snapshot.
	KPIReport = kpi.Report
	// KPIMetric identifies one key performance indicator.
	KPIMetric = kpi.Metric
)

// KPI metrics.
const (
	DownlinkThroughput  = kpi.DownlinkThroughput
	CallDropRate        = kpi.CallDropRate
	HandoverFailureRate = kpi.HandoverFailureRate
	AccessibilityRate   = kpi.AccessibilityRate
)

// NewKPISimulator creates a KPI simulator over a generated world.
func NewKPISimulator(w *netsim.World, seed uint64) *KPISimulator { return kpi.NewSimulator(w, seed) }

// KPIScore condenses a KPI report into a quality score in [0, 1].
func KPIScore(r KPIReport) float64 { return kpi.Score(r) }
