// Package auric is a reproduction of "Auric: Using Data-driven
// Recommendation to Automatically Generate Cellular Configuration"
// (Mahimkar et al., SIGCOMM 2021): a recommendation engine that learns,
// per configuration parameter, which carrier attributes the parameter
// depends on (chi-square tests of independence), finds existing carriers
// that match a new carrier on those attributes, and votes among them —
// optionally restricted to the new carrier's X2 geographic neighborhood.
//
// The package is the public facade over the implementation packages:
//
//	Engine        — train on a network snapshot, recommend for new carriers
//	World         — deterministic synthetic LTE network with ground truth
//	                (the stand-in for the paper's proprietary dataset)
//	EMS/controller/launch — the production-side pipeline of Sec 5
//
// A minimal session:
//
//	w := auric.SimulateNetwork(auric.NetworkOptions{Seed: 1, Markets: 4, ENodeBsPerMarket: 30})
//	eng := auric.NewEngine(w.Schema, auric.EngineOptions{Local: true})
//	if err := eng.Train(w.Net, w.X2, w.Current); err != nil { ... }
//	recs, err := eng.Recommend(&w.Net.Carriers[0], nil)
//
// See the examples directory for complete programs and DESIGN.md for the
// system inventory.
package auric

import (
	"auric/internal/core"
	"auric/internal/geo"
	"auric/internal/learn"
	"auric/internal/learn/cf"
	"auric/internal/learn/forest"
	"auric/internal/learn/knn"
	"auric/internal/learn/lasso"
	"auric/internal/learn/mlp"
	"auric/internal/learn/tree"
	"auric/internal/lte"
	"auric/internal/netsim"
	"auric/internal/paramspec"
)

// Domain model (see internal/lte).
type (
	// Network is a RAN snapshot: markets, eNodeBs and carriers.
	Network = lte.Network
	// Carrier is a radio channel with the attribute set of Table 1.
	Carrier = lte.Carrier
	// ENodeB is a base station.
	ENodeB = lte.ENodeB
	// Market is a group of carriers managed by one engineering team.
	Market = lte.Market
	// CarrierID indexes Network.Carriers.
	CarrierID = lte.CarrierID
	// ENodeBID indexes Network.ENodeBs.
	ENodeBID = lte.ENodeBID
	// Config is a configuration snapshot (singular and pair-wise values).
	Config = lte.Config
	// Schema describes the configuration parameters under management.
	Schema = paramspec.Schema
	// Param is one configuration parameter definition.
	Param = paramspec.Param
	// X2Graph is the X2 neighbor-relation graph used for geographic
	// proximity.
	X2Graph = geo.Graph
)

// Recommendation machinery (see internal/core).
type (
	// Engine learns dependency models and recommends configurations.
	Engine = core.Engine
	// EngineOptions configure an Engine.
	EngineOptions = core.Options
	// Recommendation is one recommended parameter value with confidence
	// and a human-readable explanation.
	Recommendation = core.Recommendation
	// BatchItem is one carrier's request within an Engine.RecommendBatch
	// call.
	BatchItem = core.BatchItem
	// BatchResult is the per-item outcome of Engine.RecommendBatch.
	BatchResult = core.BatchResult
	// ShardedEngine serves one engine per market with atomic zero-downtime
	// snapshot reload — the multi-market deployment shape of auricd.
	ShardedEngine = core.ShardedEngine
	// CacheStats is a point-in-time reading of a ShardedEngine's
	// generation-keyed recommendation cache (EngineOptions.CacheEntries).
	CacheStats = core.CacheStats
	// Learner is the pluggable dependency-model learner interface.
	Learner = learn.Learner
)

// Live-ingest machinery (see internal/core): ShardedEngine.Apply takes a
// Delta — carrier upserts and tombstones — and patches the affected models
// in place instead of retraining, which is how auricd tracks a live
// network between snapshots.
type (
	// Delta is an atomic batch of carrier mutations.
	Delta = core.Delta
	// Upsert adds a carrier (ID -1) or replaces an existing one.
	Upsert = core.Upsert
	// PairValues carries the pair-wise parameter values an upsert sets
	// toward one other carrier.
	PairValues = core.PairValues
	// ApplyResult reports what a Delta did: the new generation, the IDs
	// assigned to created carriers, and how many models were patched
	// incrementally versus refit.
	ApplyResult = core.ApplyResult
)

// Synthetic-network generation (see internal/netsim and DESIGN.md for how
// the generator substitutes the paper's proprietary dataset).
type (
	// World is a generated network with its configuration state and the
	// ground-truth oracle.
	World = netsim.World
	// NetworkOptions configure generation.
	NetworkOptions = netsim.Options
	// TruthOptions are the ground-truth process knobs.
	TruthOptions = netsim.TruthOptions
)

// DefaultSchema returns the 65-parameter schema of the paper's evaluation:
// 39 singular and 26 pair-wise range parameters.
func DefaultSchema() *Schema { return paramspec.Default() }

// SimulateNetwork generates a deterministic synthetic LTE network with a
// known ground-truth configuration process. Equal options yield identical
// worlds.
func SimulateNetwork(opts NetworkOptions) *World { return netsim.Generate(opts) }

// DefaultNetworkOptions returns the calibrated medium-scale generation
// defaults (28 markets).
func DefaultNetworkOptions() NetworkOptions { return netsim.DefaultOptions() }

// NewEngine creates a recommendation engine. The zero EngineOptions give
// the paper's shipping configuration: the collaborative-filtering learner
// with chi-square dependency selection and 75% voting support; set Local
// to scope voting to the 1-hop X2 neighborhood (the configuration that
// achieves the paper's headline accuracy).
func NewEngine(schema *Schema, opts EngineOptions) *Engine { return core.New(schema, opts) }

// NewShardedEngine creates a sharded multi-market engine: one per-market
// engine trained on that market's carriers, requests routed by carrier
// market, snapshots swapped atomically by Load with zero downtime. opts
// apply to every shard.
func NewShardedEngine(schema *Schema, opts EngineOptions) *ShardedEngine {
	return core.NewSharded(schema, opts)
}

// BuildX2 derives the X2 neighbor-relation graph of a network from eNodeB
// positions.
func BuildX2(n *Network) *X2Graph { return geo.BuildX2(n, geo.Options{}) }

// NewLearner builds a learner by name: "collaborative-filtering",
// "decision-tree", "random-forest", "k-nearest-neighbors",
// "deep-neural-network" (the five of Table 4) or "lasso-regression"
// (the Sec 3.2 linear option).
func NewLearner(name string) (Learner, error) { return learn.New(name) }

// Learners lists the available learner names.
func Learners() []string { return learn.Names() }

// Default learner constructors with the paper's hyperparameters.
var (
	// NewCollaborativeFiltering: chi-square p=0.01, 75% voting support.
	NewCollaborativeFiltering = func() Learner { return cf.New() }
	// NewDecisionTree: Gini splits, grown to pure leaves.
	NewDecisionTree = func() Learner { return tree.New() }
	// NewRandomForest: 100 trees, Gini, bootstrap + feature subsampling.
	NewRandomForest = func() Learner { return forest.New() }
	// NewKNearestNeighbors: k=5, Euclidean distance, equal weights.
	NewKNearestNeighbors = func() Learner { return knn.New() }
	// NewDeepNeuralNetwork: 7 hidden layers (100/100/100/50/50/50/10),
	// ReLU, Adam, L2=1e-5.
	NewDeepNeuralNetwork = func() Learner { return mlp.New() }
	// NewLassoRegression: Eq. (1) of the paper, coordinate descent with
	// L1 sparsity over one-hot features.
	NewLassoRegression = func() Learner { return lasso.New() }
)
