// Quickstart: generate a small synthetic LTE network, train Auric's local
// collaborative-filtering engine, and recommend the configuration of an
// existing carrier — then compare against what the network actually runs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"auric"
)

func main() {
	// A small deterministic network: 2 markets, 20 eNodeBs each.
	world := auric.SimulateNetwork(auric.NetworkOptions{
		Seed:             42,
		Markets:          2,
		ENodeBsPerMarket: 20,
	})
	fmt.Printf("network: %d carriers on %d eNodeBs in %d markets\n",
		len(world.Net.Carriers), len(world.Net.ENodeBs), len(world.Net.Markets))

	// Train the engine Auric ships with: collaborative filtering with
	// chi-square dependency selection, scoped to the X2 neighborhood.
	engine := auric.NewEngine(world.Schema, auric.EngineOptions{Local: true})
	if err := engine.Train(world.Net, world.X2, world.Current); err != nil {
		log.Fatal(err)
	}

	// Pretend carrier 17 is newly added and ask for its configuration.
	carrier := &world.Net.Carriers[17]
	recs, err := engine.Recommend(carrier, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrecommendations for carrier %d (%d MHz, %s, market %d):\n\n",
		carrier.ID, carrier.FrequencyMHz, carrier.Morphology, carrier.Market)
	matches := 0
	for i, r := range recs {
		current := world.Current.Get(carrier.ID, r.ParamIndex)
		mark := " "
		if r.Value == current {
			matches++
			mark = "="
		}
		if i < 8 { // print the first few in full
			fmt.Printf("%s %-24s -> %-8v (confidence %.0f%%, currently %v)\n",
				mark, r.Param, r.Value, r.Confidence*100, current)
			fmt.Printf("    because: %s\n", r.Explanation)
		}
	}
	fmt.Printf("\n%d of %d singular recommendations match the running configuration\n",
		matches, len(recs))
}
