// Market analysis: the Sec 2.6 study that motivates Auric. Generates a
// network, measures per-parameter variability (distinct values) and
// skewness across markets, and shows why rule-books cannot capture the
// range parameters engineers tune per location.
//
//	go run ./examples/marketanalysis
package main

import (
	"fmt"

	"auric"
)

func main() {
	world := auric.SimulateNetwork(auric.NetworkOptions{
		Seed:             3,
		Markets:          8,
		ENodeBsPerMarket: 30,
	})
	fmt.Printf("analyzing %d carriers across %d markets\n\n",
		len(world.Net.Carriers), len(world.Net.Markets))

	// Fig 2: distinct values per parameter, network-wide.
	variability := auric.Variability(world)
	fmt.Println("most variable configuration parameters (distinct values network-wide):")
	for _, row := range variability[:10] {
		fmt.Printf("  %-26s %4d\n", row.Param, row.Distinct)
	}
	over10 := 0
	for _, row := range variability {
		if row.Distinct > 10 {
			over10++
		}
	}
	fmt.Printf("parameters exceeding 10 distinct values: %d of %d\n\n", over10, len(variability))

	// Fig 3: the same parameter varies differently per market.
	perMarket := auric.MarketVariability(world)
	top := variability[0].Param
	for _, row := range perMarket {
		if row.Param != top {
			continue
		}
		fmt.Printf("distinct values of %s per market:", top)
		for m, d := range row.PerMarket {
			fmt.Printf("  m%d=%d", m+1, d)
		}
		fmt.Println()
	}

	// Fig 4: skewness classification.
	_, byClass := auric.Skewness(world)
	fmt.Printf("\nskewness of parameter value distributions:\n")
	fmt.Printf("  highly skewed:     %d\n", byClass[auric.HighlySkewed])
	fmt.Printf("  moderately skewed: %d\n", byClass[auric.ModeratelySkewed])
	fmt.Printf("  symmetric:         %d\n", byClass[auric.Symmetric])
	fmt.Println("\n(the paper finds 33 highly and 12 moderately skewed of 65 — high")
	fmt.Println("variability and skew are what defeat rule-books and classic classifiers)")
}
