// What-if: ablation sweeps over Auric's design choices through the public
// API — the voting-support threshold, the chi-square significance level,
// and the geographic scope radius — measured on one tunable parameter.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"auric"
)

func main() {
	world := auric.SimulateNetwork(auric.NetworkOptions{
		Seed:             11,
		Markets:          4,
		ENodeBsPerMarket: 30,
	})
	markets := auric.TimezoneMarkets(world)
	cv := auric.CVOptions{Folds: 3, Seed: 1, MaxSamples: 600}

	fmt.Println("baseline: collaborative filtering, global vs 1-hop local voting")
	global, local, err := auric.CompareLocalToGlobal(world, markets, cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  global %.2f%%  ->  local %.2f%%\n\n",
		global.Accuracy()*100, local.Accuracy()*100)

	fmt.Println("scope radius: how far should \"geographical proximity\" reach?")
	for _, hops := range []int{1, 2, 3} {
		hcv := cv
		hcv.Hops = hops
		_, l, err := auric.CompareLocalToGlobal(world, markets, hcv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-hop X2 neighborhood: %.2f%%\n", hops, l.Accuracy()*100)
	}
	fmt.Println("\n(the paper uses 1 hop; because local evidence is only used when it is")
	fmt.Println("decisive, widening the candidate scope changes little — see EXPERIMENTS.md)")

	fmt.Println("\nlearner comparison on these markets (quick hyperparameters):")
	results, _, err := auric.CompareLearners(world, markets, auric.DefaultLearnerSpecs(true, 0), cv)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %-26s %.2f%%\n", r.Learner, r.Overall.Accuracy()*100)
	}
}
