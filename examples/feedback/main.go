// Feedback: the Sec 6 future-work loop. A new carrier is launched with
// Auric's recommendations; once it carries traffic, simulated KPIs
// (throughput, drops, handover failures, accessibility) are observed, and
// a guard rolls the changes back if service degraded — the paper's
// response to inaccurate recommendations (Sec 4.3.3).
//
//	go run ./examples/feedback
package main

import (
	"fmt"
	"log"

	"auric"
)

func main() {
	world := auric.SimulateNetwork(auric.NetworkOptions{
		Seed:             21,
		Markets:          2,
		ENodeBsPerMarket: 20,
	})
	engine := auric.NewEngine(world.Schema, auric.EngineOptions{Local: true})
	if err := engine.Train(world.Net, world.X2, world.Current); err != nil {
		log.Fatal(err)
	}

	store := world.Current.Clone()
	store.Grow(1)
	srv := auric.NewEMSServer(world.Schema, store, auric.EMSConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	client, err := auric.DialEMS(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Integrate a new carrier with a stale vendor template.
	newID := auric.CarrierID(len(world.Net.Carriers))
	carrier := world.NewCarrierAt(6, newID, auric.NewRand(33))
	for _, pi := range world.Schema.Singular() {
		store.Set(newID, pi, world.RulebookSingularFor(carrier)[pi])
	}
	srv.ForceLock(newID)

	// The KPI simulator scores configurations against the (hidden)
	// engineer-intended optimum; the guard keeps the changes only if the
	// carrier performs at least as well as it would have on the vendor
	// template alone.
	sim := auric.NewKPISimulator(world, 1)
	sim.RegisterCarrier(carrier)
	baseline := auric.KPIScore(sim.Measure(newID, store))
	guard := func(id auric.CarrierID) bool {
		report := sim.Measure(id, store)
		score := auric.KPIScore(report)
		fmt.Printf("\npost-launch KPIs for carrier %d:\n", id)
		fmt.Printf("  downlink throughput: %6.1f Mbps\n", report.Get(auric.DownlinkThroughput))
		fmt.Printf("  call drop rate:      %6.2f %%\n", report.Get(auric.CallDropRate))
		fmt.Printf("  handover failures:   %6.2f %%\n", report.Get(auric.HandoverFailureRate))
		fmt.Printf("  accessibility:       %6.2f %%\n", report.Get(auric.AccessibilityRate))
		fmt.Printf("  quality score:       %6.3f (vendor-template baseline %.3f)\n", score, baseline)
		return score >= baseline
	}

	// The regional engineer reviews every planned change before the push
	// (Sec 5); here the engineer approves changes that land on the
	// region's intended configuration.
	intended := world.IntendedSingularFor(carrier)
	ctrl := auric.NewController(world.Schema, client, auric.ControllerOptions{
		RequireSupport: true,
		Validate: func(ch auric.Change) bool {
			return ch.Neighbor < 0 && ch.To == intended[ch.ParamIndex]
		},
	})
	wf := &auric.LaunchWorkflow{Engine: engine, Ctrl: ctrl, Client: client, Guard: guard}

	rec, err := wf.Launch(carrier, nil)
	if err != nil {
		log.Fatal(err)
	}
	after := auric.KPIScore(sim.Measure(newID, store))

	fmt.Printf("\nlaunch: planned=%d pushed=%d rolledBack=%v\n", rec.Planned, rec.Pushed, rec.RolledBack)
	fmt.Printf("quality score with the vendor template: %.3f\n", baseline)
	fmt.Printf("quality score after the launch:         %.3f\n", after)
	if after > baseline {
		fmt.Println("-> Auric's changes improved service performance and were kept")
	} else if rec.RolledBack {
		fmt.Println("-> the guard rolled the changes back to protect service")
	}
}
