// New-carrier launch: the full Sec 5 pipeline on one carrier. A vendor
// integrates a new radio channel on an existing eNodeB with configuration
// from a stale rulebook; Auric recommends corrections; the controller
// diffs and pushes only the mismatches through a live EMS (a real TCP
// server in this process) while the carrier is still locked; then the
// carrier goes on air.
//
//	go run ./examples/newcarrier
package main

import (
	"fmt"
	"log"

	"auric"
)

func main() {
	world := auric.SimulateNetwork(auric.NetworkOptions{
		Seed:             7,
		Markets:          2,
		ENodeBsPerMarket: 24,
	})

	engine := auric.NewEngine(world.Schema, auric.EngineOptions{Local: true})
	if err := engine.Train(world.Net, world.X2, world.Current); err != nil {
		log.Fatal(err)
	}

	// The EMS fronts a copy of the live configuration, grown by one slot
	// for the carrier about to be integrated.
	store := world.Current.Clone()
	store.Grow(1)
	srv := auric.NewEMSServer(world.Schema, store, auric.EMSConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("EMS simulator listening on %s\n", addr)

	// The vendor integrates a new carrier on eNodeB 11 using an
	// out-of-date rulebook template, and leaves it locked.
	newID := auric.CarrierID(len(world.Net.Carriers))
	carrier := world.NewCarrierAt(11, newID, auric.NewRand(99))
	stale := world.RulebookSingularFor(carrier)
	for _, pi := range world.Schema.Singular() {
		store.Set(newID, pi, stale[pi])
	}
	srv.ForceLock(newID)
	fmt.Printf("vendor integrated carrier %d: %d MHz on eNodeB %d (locked)\n\n",
		newID, carrier.FrequencyMHz, carrier.ENodeB)

	// SmartLaunch: recommend, diff, push, unlock, post-check.
	client, err := auric.DialEMS(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctrl := auric.NewController(world.Schema, client, auric.ControllerOptions{
		RequireSupport: true,
		Validate: func(ch auric.Change) bool {
			fmt.Printf("engineer reviews %-24s %v -> %v\n    %s\n", ch.Param, ch.From, ch.To, ch.Explanation)
			return true // this engineer trusts Auric (Sec 5: validation becomes optional)
		},
	})
	wf := &auric.LaunchWorkflow{Engine: engine, Ctrl: ctrl, Client: client}

	rec, err := wf.Launch(carrier, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlaunch record: planned=%d pushed=%d outcome=%s unlocked=%v postcheck=%v\n",
		rec.Planned, rec.Pushed, rec.Outcome, rec.Unlocked, rec.PostcheckOK)

	// How much closer to the engineer-intended configuration did we get?
	intended := world.IntendedSingularFor(carrier)
	fixed, remaining := 0, 0
	for _, pi := range world.Schema.Singular() {
		if stale[pi] == intended[pi] {
			continue
		}
		if store.Get(newID, pi) == intended[pi] {
			fixed++
		} else {
			remaining++
		}
	}
	fmt.Printf("vendor template deviated on %d parameters; Auric corrected %d of them\n",
		fixed+remaining, fixed)
}
