// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the per-experiment index), plus ablation
// benches for the design choices Auric makes. Each benchmark reports the
// experiment's headline metric via b.ReportMetric, so a -bench run doubles
// as a miniature reproduction:
//
//	go test -bench=. -benchmem
//
// Scales are reduced so the whole suite completes in minutes; cmd/auriceval
// runs the same experiments at configurable scale.
package auric_test

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"auric"
	"auric/internal/dataset"
	"auric/internal/eval"
	"auric/internal/learn/cf"
	"auric/internal/learn/forest"
	"auric/internal/learn/knn"
	"auric/internal/learn/lasso"
)

var (
	worldOnce sync.Once
	world     *auric.World
)

// benchWorld is the shared 4-market bench network (about 1200 carriers).
func benchWorld() *auric.World {
	worldOnce.Do(func() {
		world = auric.SimulateNetwork(auric.NetworkOptions{
			Seed: 1, Markets: 4, ENodeBsPerMarket: 30,
		})
	})
	return world
}

// benchCV returns the cross-validation options of the experiment benches.
// Full -bench runs evaluate the complete learning tables — the columnar
// learners run Table 4 at netsim scale — while -short (bench-smoke in make
// check) keeps the historical 500-sample cap so the smoke pass stays fast.
func benchCV() auric.CVOptions {
	cv := auric.CVOptions{Folds: 3, Seed: 1}
	if testing.Short() {
		cv.MaxSamples = 500
	}
	return cv
}

// BenchmarkFig2Variability regenerates Fig 2: distinct values per
// parameter across the network.
func BenchmarkFig2Variability(b *testing.B) {
	w := benchWorld()
	var maxDistinct int
	for i := 0; i < b.N; i++ {
		rows := auric.Variability(w)
		maxDistinct = rows[0].Distinct
	}
	b.ReportMetric(float64(maxDistinct), "max-distinct")
}

// BenchmarkFig3MarketVariability regenerates Fig 3: distinct values per
// parameter per market.
func BenchmarkFig3MarketVariability(b *testing.B) {
	w := benchWorld()
	var rows []auric.MarketVariabilityRow
	for i := 0; i < b.N; i++ {
		rows = auric.MarketVariability(w)
	}
	b.ReportMetric(float64(len(rows)), "parameters")
}

// BenchmarkFig4Skewness regenerates Fig 4: parameter skewness and its
// classification.
func BenchmarkFig4Skewness(b *testing.B) {
	w := benchWorld()
	var highly int
	for i := 0; i < b.N; i++ {
		_, byClass := auric.Skewness(w)
		highly = byClass[auric.HighlySkewed]
	}
	b.ReportMetric(float64(highly), "highly-skewed")
}

// BenchmarkTable3Dataset regenerates Table 3: the four-timezone evaluation
// dataset summary.
func BenchmarkTable3Dataset(b *testing.B) {
	w := benchWorld()
	var values int
	for i := 0; i < b.N; i++ {
		values = 0
		for _, row := range eval.Table3(w, auric.TimezoneMarkets(w)) {
			values += row.ParamValues
		}
	}
	b.ReportMetric(float64(values), "param-values")
}

// BenchmarkDatasetPerCallBuild labels every parameter of the full bench
// network with dataset.Build, which reassembles the attribute base on
// each call — the engine's train path before the shared Builder existed.
func BenchmarkDatasetPerCallBuild(b *testing.B) {
	w := benchWorld()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = 0
		for pi := 0; pi < w.Schema.Len(); pi++ {
			rows += dataset.Build(w.Net, w.X2, w.Current, pi, nil).Len()
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkDatasetSharedBuilder labels the same parameter set through one
// dataset.Builder, which assembles the singular and pair-wise attribute
// bases once and shares them across all parameters — the engine's current
// train path.
func BenchmarkDatasetSharedBuilder(b *testing.B) {
	w := benchWorld()
	var rows int
	for i := 0; i < b.N; i++ {
		builder := dataset.NewBuilder(w.Net, w.X2, nil)
		rows = 0
		for pi := 0; pi < w.Schema.Len(); pi++ {
			rows += builder.Labeled(w.Current, pi).Len()
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTable4GlobalLearners regenerates Table 4: the five global
// learners compared over the four timezone markets. Reports collaborative
// filtering's overall accuracy.
func BenchmarkTable4GlobalLearners(b *testing.B) {
	w := benchWorld()
	var cfAcc float64
	for i := 0; i < b.N; i++ {
		results, _, err := auric.CompareLearners(w, auric.TimezoneMarkets(w), auric.DefaultLearnerSpecs(true, 0), benchCV())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Learner == "collaborative-filtering" {
				cfAcc = r.Overall.Accuracy()
			}
		}
	}
	b.ReportMetric(cfAcc*100, "cf-acc-%")
}

// BenchmarkFig10PerParameter regenerates Fig 10 for one market: per-
// parameter accuracy of the five learners, sorted by variability.
func BenchmarkFig10PerParameter(b *testing.B) {
	w := benchWorld()
	m := auric.TimezoneMarkets(w)[:1]
	var rows int
	for i := 0; i < b.N; i++ {
		_, fig10, err := auric.CompareLearners(w, m, auric.DefaultLearnerSpecs(true, 0), benchCV())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(fig10[m[0]])
	}
	b.ReportMetric(float64(rows), "parameters")
}

// BenchmarkLocalVsGlobal regenerates the Sec 4.3.2 comparison: CF with
// global voting vs the 1-hop local learner.
func BenchmarkLocalVsGlobal(b *testing.B) {
	w := benchWorld()
	var gap float64
	for i := 0; i < b.N; i++ {
		g, l, err := auric.CompareLocalToGlobal(w, auric.TimezoneMarkets(w), benchCV())
		if err != nil {
			b.Fatal(err)
		}
		gap = (l.Accuracy() - g.Accuracy()) * 100
	}
	b.ReportMetric(gap, "local-gain-pp")
}

// BenchmarkFig11LocalAccuracy regenerates Figs 11a-d: local-learner
// accuracy for the highest-variability parameters across markets.
func BenchmarkFig11LocalAccuracy(b *testing.B) {
	w := benchWorld()
	var rows []eval.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Fig11(w, 2, benchCV())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "parameters")
}

// BenchmarkFig12MismatchLabels regenerates Fig 12: oracle labeling of the
// local learner's mismatches. Reports the good-recommendation share.
func BenchmarkFig12MismatchLabels(b *testing.B) {
	w := benchWorld()
	var goodShare float64
	for i := 0; i < b.N; i++ {
		labels, _, err := auric.LabelRecommendationMismatches(w, benchCV())
		if err != nil {
			b.Fatal(err)
		}
		if labels.Total > 0 {
			goodShare = float64(labels.GoodRecommendation) / float64(labels.Total) * 100
		}
	}
	b.ReportMetric(goodShare, "good-reco-%")
}

// BenchmarkTable5SmartLaunch regenerates Table 5: the production launch
// window through the full EMS pipeline. Reports the change rate.
func BenchmarkTable5SmartLaunch(b *testing.B) {
	w := benchWorld()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, _, err := auric.SimulateLaunches(w, auric.LaunchSimOptions{
			Seed: 1, Launches: 300, TrainMaxSamples: 1500,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.ChangeRate() * 100
	}
	b.ReportMetric(rate, "change-rate-%")
}

// BenchmarkDependencyRecovery measures how well chi-square selection
// recovers the generator's true dependencies (the dependency-learning
// ablation of DESIGN.md).
func BenchmarkDependencyRecovery(b *testing.B) {
	w := benchWorld()
	var recall float64
	for i := 0; i < b.N; i++ {
		res, err := eval.DependencyRecovery(w, 800)
		if err != nil {
			b.Fatal(err)
		}
		recall = res.Recall()
	}
	b.ReportMetric(recall*100, "recall-%")
}

// BenchmarkAblationBulkPush compares per-parameter vs bulk change pushes
// against a congested EMS (the paper's planned controller enhancement,
// Sec 5). Reports the number of timeout fall-outs.
func BenchmarkAblationBulkPush(b *testing.B) {
	congested := auric.EMSConfig{
		MaxConcurrentSets: 1,
		SetLatency:        2 * time.Millisecond,
		QueueTimeout:      6 * time.Millisecond,
	}
	for _, bulk := range []bool{false, true} {
		name := "per-param"
		if bulk {
			name = "bulk"
		}
		b.Run(name, func(b *testing.B) {
			w := benchWorld()
			var timeouts int
			for i := 0; i < b.N; i++ {
				res, _, err := auric.SimulateLaunches(w, auric.LaunchSimOptions{
					Seed: 5, Launches: 200, EMS: congested, Bulk: bulk, TrainMaxSamples: 1500,
				})
				if err != nil {
					b.Fatal(err)
				}
				timeouts = res.FalloutTimeout
			}
			b.ReportMetric(float64(timeouts), "timeout-fallouts")
		})
	}
}

// --- Ablations over Auric's design choices ------------------------------

// ablate cross-validates one learner on the three most tunable parameters
// of the bench world's first market.
func ablate(b *testing.B, l auric.Learner, cv auric.CVOptions, local bool) float64 {
	b.Helper()
	w := benchWorld()
	var res eval.Result
	for _, name := range []string{"sFreqPrio", "capacityThreshold", "hysA3Offset"} {
		pi := w.Schema.IndexOf(name)
		t := evalTable(w, pi, 0)
		var (
			r   eval.Result
			err error
		)
		if local {
			r, err = eval.CrossValidateLocal(t, l, w.Net, w.X2, cv, nil)
		} else {
			r, err = eval.CrossValidate(t, l, cv, nil)
		}
		if err != nil {
			b.Fatal(err)
		}
		res.Add(r)
	}
	return res.Accuracy()
}

// BenchmarkAblationDependencyLearner compares the Sec 3.2 dependency-model
// design space on the most tunable parameters: collaborative filtering vs
// lasso regression (the paper's linear option).
func BenchmarkAblationDependencyLearner(b *testing.B) {
	learners := []struct {
		name  string
		build func() auric.Learner
	}{
		{"cf", func() auric.Learner { return cf.New() }},
		{"lasso", func() auric.Learner { return lasso.New() }},
	}
	for _, l := range learners {
		b.Run(l.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = ablate(b, l.build(), benchCV(), false)
			}
			b.ReportMetric(acc*100, "acc-%")
		})
	}
}

// BenchmarkAblationVotingThreshold sweeps the CF voting-support threshold
// (the paper fixes 75%).
func BenchmarkAblationVotingThreshold(b *testing.B) {
	for _, support := range []float64{0.55, 0.75, 0.95} {
		b.Run(percentName(support), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = ablate(b, &cf.Learner{Opts: cf.Options{Support: support}}, benchCV(), false)
			}
			b.ReportMetric(acc*100, "acc-%")
		})
	}
}

// BenchmarkAblationChiSquareAlpha sweeps the chi-square significance level
// (the paper fixes p=0.01).
func BenchmarkAblationChiSquareAlpha(b *testing.B) {
	for _, alpha := range []float64{0.001, 0.01, 0.1} {
		b.Run(percentName(alpha), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = ablate(b, &cf.Learner{Opts: cf.Options{Alpha: alpha}}, benchCV(), false)
			}
			b.ReportMetric(acc*100, "acc-%")
		})
	}
}

// BenchmarkAblationKNNK sweeps k in k-nearest neighbors (the paper fixes
// k=5).
func BenchmarkAblationKNNK(b *testing.B) {
	for _, k := range []int{1, 5, 15} {
		b.Run(intName("k", k), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = ablate(b, &knn.Learner{Opts: knn.Options{K: k}}, benchCV(), false)
			}
			b.ReportMetric(acc*100, "acc-%")
		})
	}
}

// BenchmarkAblationForestSize sweeps the random-forest ensemble size (the
// paper fixes 100 trees).
func BenchmarkAblationForestSize(b *testing.B) {
	for _, trees := range []int{10, 30, 100} {
		b.Run(intName("trees", trees), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = ablate(b, &forest.Learner{Opts: forest.Options{Trees: trees, Seed: 1}}, benchCV(), false)
			}
			b.ReportMetric(acc*100, "acc-%")
		})
	}
}

// BenchmarkAblationScopeHops sweeps the geographic scope radius (the paper
// fixes 1 X2 hop).
func BenchmarkAblationScopeHops(b *testing.B) {
	for _, hops := range []int{1, 2, 3} {
		b.Run(intName("hops", hops), func(b *testing.B) {
			cv := benchCV()
			cv.Hops = hops
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = ablate(b, cf.New(), cv, true)
			}
			b.ReportMetric(acc*100, "acc-%")
		})
	}
}

// helpers

var (
	benchBuildersMu sync.Mutex
	benchBuilders   = map[int]*dataset.Builder{}
)

// benchBuilder caches one shared-base table builder per market, so ablation
// benches that label several parameters of one market stop rebuilding the
// market's attribute rows on every call (benchWorld is a singleton, so the
// cached bases stay valid for the whole bench run).
func benchBuilder(w *auric.World, market int) *dataset.Builder {
	benchBuildersMu.Lock()
	defer benchBuildersMu.Unlock()
	b, ok := benchBuilders[market]
	if !ok {
		b = dataset.NewBuilder(w.Net, w.X2, dataset.MarketFilter(w.Net, market))
		benchBuilders[market] = b
	}
	return b
}

func evalTable(w *auric.World, pi, market int) *dataset.Table {
	return benchBuilder(w, market).Labeled(w.Current, pi)
}

func percentName(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func intName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
